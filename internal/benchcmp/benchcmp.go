// Package benchcmp loads and diffs cmd/scrubbench's machine-readable
// BENCH_<date>.json runs, flagging regressions beyond a noise threshold.
// It is the comparison half of the benchmark-regression gate: scrubbench
// produces runs, benchcmp decides whether the current run is acceptably
// close to a checked-in baseline.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schema identifies the current BENCH file layout.
const Schema = "scrubbench/v1"

// Result is one benchmark's measurements. Time and allocation metrics are
// lower-is-better; *PerSec metrics are higher-is-better.
type Result struct {
	// Name identifies the benchmark, slash-scoped (e.g. "replay/TPCdisk66",
	// "fleet/workers-8").
	Name string `json:"name"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// EventsPerSec is simulator events fired per wall-clock second (zero
	// when the benchmark doesn't drive a simulator).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Extra holds benchmark-specific metrics. Keys ending in "_per_sec"
	// compare higher-is-better; all others lower-is-better.
	Extra map[string]float64 `json:"extra,omitempty"`
	// CalNs is the wall time of scrubbench's fixed calibration spin,
	// measured next to this benchmark. Comparisons use the base/current
	// ratio to cancel host-speed differences (CPU frequency scaling,
	// slower CI runners) out of the time metrics; it is never compared
	// itself. Zero disables normalization.
	CalNs float64 `json:"cal_ns,omitempty"`
}

// Run is one scrubbench invocation's output file.
type Run struct {
	Schema string `json:"schema"`
	// Date is the run date, YYYY-MM-DD.
	Date string `json:"date"`
	// GoVersion records the toolchain (runtime.Version()).
	GoVersion string `json:"go_version"`
	// Quick marks a -quick (CI-sized) suite.
	Quick bool `json:"quick"`
	// PeakRSSBytes is the process high-water resident set after the suite.
	PeakRSSBytes int64    `json:"peak_rss_bytes"`
	Results      []Result `json:"results"`
}

// Find returns the named result, or nil.
func (r *Run) Find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Load reads a BENCH_*.json file.
func Load(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var run Run
	if err := json.Unmarshal(data, &run); err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %w", path, err)
	}
	if run.Schema != Schema {
		return nil, fmt.Errorf("benchcmp: %s: schema %q, want %q", path, run.Schema, Schema)
	}
	return &run, nil
}

// Write saves a run as indented JSON.
func (r *Run) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Delta is one metric's base-to-current change.
type Delta struct {
	// Name is the benchmark, Metric the field compared.
	Name, Metric string
	// Base and Cur are the two values; Pct is the relative change in the
	// regression direction (positive = worse), e.g. +0.30 for 30% slower.
	Base, Cur, Pct float64
	// Regression marks a change beyond the comparison threshold.
	Regression bool
}

func (d Delta) String() string {
	dir := "ok"
	if d.Regression {
		dir = "REGRESSION"
	}
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%%) %s", d.Name, d.Metric, d.Base, d.Cur, d.Pct*100, dir)
}

// allocSlack is the absolute allocs/op increase tolerated on top of the
// relative threshold: steady-state counts are tiny (often 0), where any
// relative rule degenerates, and 1-2 allocations of jitter (a map resize,
// a one-off growth) are not a leak.
const allocSlack = 2.0

// Compare diffs every metric of every baseline result against the current
// run. threshold is the tolerated relative regression (0.15 = 15%): time
// and allocation metrics regress when they rise past it, *PerSec metrics
// when they fall past it. A baseline result missing from the current run
// is itself a regression (the gate must not pass because a benchmark
// silently disappeared); results only in the current run are ignored.
func Compare(base, cur *Run, threshold float64) []Delta {
	var out []Delta
	for i := range base.Results {
		b := &base.Results[i]
		c := cur.Find(b.Name)
		if c == nil {
			out = append(out, Delta{Name: b.Name, Metric: "missing", Regression: true})
			continue
		}
		// speed cancels host-speed differences out of the time metrics:
		// the current value is rescaled as if run on the baseline host.
		speed := 1.0
		if b.CalNs > 0 && c.CalNs > 0 {
			speed = b.CalNs / c.CalNs
		}
		out = append(out, cmpLower(b.Name, "ns_per_op", b.NsPerOp, c.NsPerOp*speed, threshold))
		a := cmpLower(b.Name, "allocs_per_op", b.AllocsPerOp, c.AllocsPerOp, threshold)
		if a.Regression && c.AllocsPerOp <= b.AllocsPerOp+allocSlack {
			a.Regression = false
		}
		out = append(out, a)
		if b.EventsPerSec > 0 {
			out = append(out, cmpHigher(b.Name, "events_per_sec", b.EventsPerSec, c.EventsPerSec/speed, threshold))
		}
		keys := make([]string, 0, len(b.Extra))
		for k := range b.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv, cv := b.Extra[k], c.Extra[k]
			if perSec(k) {
				out = append(out, cmpHigher(b.Name, k, bv, cv/speed, threshold))
			} else {
				out = append(out, cmpLower(b.Name, k, bv, cv*speed, threshold))
			}
		}
	}
	return out
}

// Regressions filters a Compare result down to the failures.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

func perSec(metric string) bool {
	const suffix = "_per_sec"
	return len(metric) >= len(suffix) && metric[len(metric)-len(suffix):] == suffix
}

// cmpLower compares a lower-is-better metric.
func cmpLower(name, metric string, base, cur, threshold float64) Delta {
	d := Delta{Name: name, Metric: metric, Base: base, Cur: cur}
	switch {
	case base <= 0:
		// Zero baselines (e.g. 0 allocs/op) cannot express a relative
		// threshold; any rise is a candidate regression and the caller's
		// absolute slack (allocs) or the raw values decide.
		d.Regression = cur > base
		if cur > 0 {
			d.Pct = 1
		}
	default:
		d.Pct = cur/base - 1
		d.Regression = d.Pct > threshold
	}
	return d
}

// cmpHigher compares a higher-is-better metric; Pct stays
// positive-is-worse so callers read one convention.
func cmpHigher(name, metric string, base, cur, threshold float64) Delta {
	d := Delta{Name: name, Metric: metric, Base: base, Cur: cur}
	if base <= 0 {
		return d
	}
	d.Pct = 1 - cur/base
	d.Regression = d.Pct > threshold
	return d
}
