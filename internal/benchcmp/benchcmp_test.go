package benchcmp

import (
	"path/filepath"
	"testing"
)

func baseRun() *Run {
	return &Run{
		Schema: Schema,
		Date:   "2026-08-06",
		Results: []Result{
			{
				Name:         "replay/TPCdisk66",
				NsPerOp:      10e6,
				AllocsPerOp:  4,
				EventsPerSec: 1e6,
				Extra:        map[string]float64{"records_per_sec": 600e3},
			},
			{Name: "queue/pooled", NsPerOp: 180, AllocsPerOp: 0},
		},
	}
}

func findDelta(t *testing.T, deltas []Delta, name, metric string) Delta {
	t.Helper()
	for _, d := range deltas {
		if d.Name == name && d.Metric == metric {
			return d
		}
	}
	t.Fatalf("no delta for %s %s in %v", name, metric, deltas)
	return Delta{}
}

func TestCompareWithinThreshold(t *testing.T) {
	base := baseRun()
	cur := baseRun()
	cur.Results[0].NsPerOp *= 1.10      // +10% slower: inside 15%
	cur.Results[0].EventsPerSec *= 0.90 // -10% throughput: inside
	cur.Results[1].AllocsPerOp = 1      // 0 -> 1: inside the alloc slack
	if regs := Regressions(Compare(base, cur, 0.15)); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareFlagsTimeRegression(t *testing.T) {
	base := baseRun()
	cur := baseRun()
	cur.Results[0].NsPerOp *= 1.30
	regs := Regressions(Compare(base, cur, 0.15))
	if len(regs) != 1 {
		t.Fatalf("want exactly the ns_per_op regression, got %v", regs)
	}
	d := findDelta(t, regs, "replay/TPCdisk66", "ns_per_op")
	if d.Pct < 0.29 || d.Pct > 0.31 {
		t.Fatalf("Pct = %v, want ~0.30", d.Pct)
	}
}

func TestCompareFlagsThroughputDrop(t *testing.T) {
	base := baseRun()
	cur := baseRun()
	cur.Results[0].EventsPerSec *= 0.5
	cur.Results[0].Extra["records_per_sec"] *= 0.5
	regs := Regressions(Compare(base, cur, 0.15))
	if len(regs) != 2 {
		t.Fatalf("want events_per_sec and records_per_sec regressions, got %v", regs)
	}
	findDelta(t, regs, "replay/TPCdisk66", "events_per_sec")
	findDelta(t, regs, "replay/TPCdisk66", "records_per_sec")
}

func TestCompareAllocSlackAndLeak(t *testing.T) {
	base := baseRun()
	cur := baseRun()
	cur.Results[1].AllocsPerOp = allocSlack // jitter: tolerated
	if regs := Regressions(Compare(base, cur, 0.15)); len(regs) != 0 {
		t.Fatalf("alloc jitter flagged: %v", regs)
	}
	cur.Results[1].AllocsPerOp = allocSlack + 1 // leak: flagged
	regs := Regressions(Compare(base, cur, 0.15))
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("alloc leak not flagged: %v", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := baseRun()
	cur := baseRun()
	cur.Results = cur.Results[:1]
	regs := Regressions(Compare(base, cur, 0.15))
	if len(regs) != 1 || regs[0].Metric != "missing" || regs[0].Name != "queue/pooled" {
		t.Fatalf("missing benchmark not flagged: %v", regs)
	}
}

func TestCompareIgnoresNewBenchmarks(t *testing.T) {
	base := baseRun()
	cur := baseRun()
	cur.Results = append(cur.Results, Result{Name: "brand/new", NsPerOp: 1e9})
	if regs := Regressions(Compare(base, cur, 0.15)); len(regs) != 0 {
		t.Fatalf("new benchmark flagged: %v", regs)
	}
}

func TestRoundTripAndSchemaCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	base := baseRun()
	base.GoVersion = "go-test"
	base.PeakRSSBytes = 1 << 20
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != base.Date || got.GoVersion != "go-test" || got.PeakRSSBytes != 1<<20 {
		t.Fatalf("round trip lost header fields: %+v", got)
	}
	if r := got.Find("queue/pooled"); r == nil || r.NsPerOp != 180 {
		t.Fatalf("round trip lost results: %+v", got.Results)
	}
	if got.Find("nope") != nil {
		t.Fatal("Find invented a result")
	}

	bad := *base
	bad.Schema = "other/v9"
	path2 := filepath.Join(dir, "BENCH_bad.json")
	if err := bad.Write(path2); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path2); err == nil {
		t.Fatal("Load accepted a foreign schema")
	}
}
