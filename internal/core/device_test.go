package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/optimize"
	"repro/internal/trace"
)

// TestPerModelWaitThresholdDefaults pins the compat contract: HDD-backed
// systems keep the paper's 100 ms default threshold exactly as before
// the device-model split, while flash models default to their own,
// shorter threshold.
func TestPerModelWaitThresholdDefaults(t *testing.T) {
	sys, err := NewFromConfig(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Config().WaitThreshold; got != 100*time.Millisecond {
		t.Fatalf("HDD default threshold = %v, want the pre-split 100ms", got)
	}
	ssd := disk.DemoSSD()
	sys, err = New(nil, WithDevice(ssd))
	if err != nil {
		t.Fatal(err)
	}
	got := sys.Config().WaitThreshold
	if got != ssd.DefaultWaitThreshold() {
		t.Fatalf("SSD default threshold = %v, want model's %v", got, ssd.DefaultWaitThreshold())
	}
	if got >= 100*time.Millisecond {
		t.Fatalf("SSD default threshold %v not shorter than the HDD default", got)
	}
	// Explicit thresholds still win over the model default.
	sys, err = New(nil, WithDevice(ssd), WithWaitThreshold(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Config().WaitThreshold != time.Second {
		t.Fatal("explicit threshold overridden by model default")
	}
}

func TestWithDeviceWiring(t *testing.T) {
	ssd := disk.DemoSSD()
	sys, err := New(nil, WithDevice(ssd))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Disk != nil {
		t.Fatal("SSD-backed system exposes a rotational Disk")
	}
	if sys.Device.ModelName() != ssd.Name {
		t.Fatalf("device %q, want %q", sys.Device.ModelName(), ssd.Name)
	}
	hdd := disk.DemoSmall()
	sys, err = New(nil, WithDevice(hdd))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Disk == nil || sys.Device != disk.Device(sys.Disk) {
		t.Fatal("rotational system's Disk alias not wired")
	}
}

func TestSchedulerSelection(t *testing.T) {
	for _, name := range []string{"", "cfq", "deadline", "noop", "bsa", "bsa-repair"} {
		if _, err := New(nil, WithIOSched(name)); err != nil {
			t.Fatalf("scheduler %q rejected: %v", name, err)
		}
	}
	if _, err := New(nil, WithIOSched("anticipatory")); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := New(nil, WithIOSched("deadline"), WithPolicy(PolicyCFQIdle)); err == nil {
		t.Fatal("cfq-idle policy accepted on a non-cfq scheduler")
	}
	if _, err := New(nil, WithIOSched("cfq"), WithPolicy(PolicyCFQIdle)); err != nil {
		t.Fatal("cfq-idle policy rejected on cfq")
	}
}

// TestSSDSystemScrubs runs the full stack — scrubber, policy, queue —
// against the flash device: the scrub must make progress and surface
// injected errors exactly as it does on the rotational model.
func TestSSDSystemScrubs(t *testing.T) {
	ssd := disk.DemoSSD()
	for _, sched := range []string{"cfq", "deadline", "bsa"} {
		sys, err := New(nil, WithDevice(ssd), WithIOSched(sched),
			WithAlgorithm(Sequential), WithRequestBytes(1<<20))
		if err != nil {
			t.Fatal(err)
		}
		sys.Device.InjectLSE(12345)
		sys.Device.InjectLSE(400000)
		sys.Start()
		if err := sys.RunFor(context.Background(), 10*time.Second); err != nil {
			t.Fatal(err)
		}
		rep := sys.Report()
		if rep.ScrubMBps <= 0 {
			t.Fatalf("sched %s: SSD system never scrubbed: %+v", sched, rep)
		}
		if rep.LSEsFound < 2 {
			t.Fatalf("sched %s: found %d LSEs, want 2", sched, rep.LSEsFound)
		}
	}
}

// TestSSDRecorderRetuneRefused pins the audited HDD-only path: retuning
// runs the rotational idle-time optimizer, so flash systems must refuse
// it loudly rather than tune against the wrong service curve.
func TestSSDRecorderRetuneRefused(t *testing.T) {
	ssd := disk.DemoSSD()
	sys, err := New(nil, WithDevice(ssd))
	if err != nil {
		t.Fatal(err)
	}
	rec := sys.AttachRecorder(0)
	for i := 0; i < 64; i++ {
		rec.records = append(rec.records, trace.Record{Arrival: time.Duration(i) * time.Millisecond, Sectors: 8})
	}
	if _, err := rec.Retune(optimize.Goal{MeanSlowdown: time.Millisecond}); err == nil {
		t.Fatal("SSD system retuned against the rotational optimizer")
	}
}
