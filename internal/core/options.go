package core

import (
	"time"

	"repro/internal/blockdev"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/scrub"
)

// Option configures a System at construction. Options are applied in
// order over the defaulted configuration, so later options win. The
// functional form is the supported construction surface; the Config
// struct remains only as a deprecated shim (NewFromConfig).
type Option func(*Config)

// WithAlgorithm selects the scrub order (default Staggered).
func WithAlgorithm(a AlgorithmKind) Option {
	return func(c *Config) { c.Algorithm = a }
}

// WithDevice selects any device model — rotational (disk.Model) or
// solid-state (disk.SSDModel) — overriding the model passed to New. The
// device model also owns the default wait threshold: flash idle windows
// are shorter than a disk arm's, so SSD-backed systems default lower.
func WithDevice(dm disk.DeviceModel) Option {
	return func(c *Config) { c.Device = dm }
}

// WithIOSched names the I/O scheduler: "cfq" (default), "deadline",
// "noop", or the bad-sector-aware elevators "bsa" and "bsa-repair".
// PolicyCFQIdle requires CFQ — the only scheduler with I/O priorities.
func WithIOSched(name string) Option {
	return func(c *Config) { c.Sched = name }
}

// WithRegions sets the staggered region count (default 128).
func WithRegions(n int) Option {
	return func(c *Config) { c.Regions = n }
}

// WithMode selects kernel- vs user-level scrub issuing (default kernel).
func WithMode(m scrub.Mode) Option {
	return func(c *Config) { c.Mode = m }
}

// WithPolicy selects the scrub scheduling policy (default PolicyWaiting).
func WithPolicy(p PolicyKind) Option {
	return func(c *Config) { c.Policy = p }
}

// WithRequestBytes sets the scrub request size (default 64 KB).
func WithRequestBytes(n int64) Option {
	return func(c *Config) { c.ReqBytes = n }
}

// WithDelay sets the pause for PolicyFixedDelay.
func WithDelay(d time.Duration) Option {
	return func(c *Config) { c.Delay = d }
}

// WithWaitThreshold sets the idle threshold for PolicyWaiting and
// PolicyARWaiting (default 100 ms).
func WithWaitThreshold(d time.Duration) Option {
	return func(c *Config) { c.WaitThreshold = d }
}

// WithARThreshold sets the prediction threshold for PolicyAR and
// PolicyARWaiting (default: the wait threshold).
func WithARThreshold(d time.Duration) Option {
	return func(c *Config) { c.ARThreshold = d }
}

// WithAutoRepair rewrites sectors whose verify detected a latent error,
// completing the detect-and-correct loop (remap-on-detect).
func WithAutoRepair() Option {
	return func(c *Config) { c.AutoRepair = true }
}

// WithEscalation enables the Oprea–Juels region re-scrub: one detection
// immediately queues a verify of the whole surrounding region.
func WithEscalation() Option {
	return func(c *Config) { c.Escalate = true }
}

// WithObs instruments every layer of the stack against reg (see
// System.Instrument). Nil leaves the zero-overhead path in place.
func WithObs(reg *obs.Registry) Option {
	return func(c *Config) { c.Obs = reg }
}

// WithFaults attaches a latent-sector-error arrival model: a
// fault.Injector plants the model's stream on the disk once the system
// starts, and tracks every planted sector through detection and remap
// (System.Faults, Report's fault fields).
func WithFaults(m fault.Model) Option {
	return func(c *Config) { c.Faults = m }
}

// WithFaultSeed sets the fault stream's RNG seed (default 1).
func WithFaultSeed(seed int64) Option {
	return func(c *Config) { c.FaultSeed = seed }
}

// WithRetryPolicy bounds the block layer's reaction to medium errors:
// retries with backoff under a per-request timeout. The default is no
// retries.
func WithRetryPolicy(p blockdev.RetryPolicy) Option {
	return func(c *Config) { c.Retry = p }
}
