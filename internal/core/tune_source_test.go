package core

import (
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/optimize"
	"repro/internal/trace"
)

// TestAutoTuneSourceMatchesRecords pins the compat contract: tuning from
// a streaming source must produce the identical Choice as tuning from
// the materialized records, because both reduce to the same idle-gap
// sequence.
func TestAutoTuneSourceMatchesRecords(t *testing.T) {
	spec, _ := trace.ByName("HPc3t3d0")
	tr := spec.Generate(5, 20*time.Minute)
	m := disk.HitachiUltrastar15K450()
	goal := optimize.Goal{MeanSlowdown: 2 * time.Millisecond, MaxSlowdown: 50 * time.Millisecond}

	want, err := AutoTune(tr.Records, m, goal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AutoTuneSource(tr.Source(), m, goal)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReqSectors != want.ReqSectors || got.Threshold != want.Threshold {
		t.Fatalf("source tune differs: %+v vs %+v", got, want)
	}
	// A purely streaming source (no slice behind it) must agree too.
	got2, err := AutoTuneSource(spec.Source(5, 20*time.Minute), m, goal)
	if err != nil {
		t.Fatal(err)
	}
	if got2.ReqSectors != want.ReqSectors || got2.Threshold != want.Threshold {
		t.Fatalf("generator-source tune differs: %+v vs %+v", got2, want)
	}
}

func TestNewTunedSource(t *testing.T) {
	spec, _ := trace.ByName("HPc3t3d0")
	m := disk.HitachiUltrastar15K450()
	goal := optimize.Goal{MeanSlowdown: 2 * time.Millisecond, MaxSlowdown: 50 * time.Millisecond}
	sys, choice, err := NewTunedSource(spec.Source(5, 20*time.Minute), m, goal, Staggered)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Config().ReqBytes != choice.ReqSectors*disk.SectorSize {
		t.Fatal("tuned size not applied")
	}
	if sys.Config().WaitThreshold != choice.Threshold {
		t.Fatal("tuned threshold not applied")
	}
}

func TestAutoTuneSourceErrors(t *testing.T) {
	m := disk.HitachiUltrastar15K450()
	one := trace.NewSliceSource("one", 0, []trace.Record{{LBA: 0, Sectors: 8}})
	if _, err := AutoTuneSource(one, m, optimize.Goal{MeanSlowdown: time.Millisecond}); err == nil {
		t.Fatal("single-record source accepted")
	}
}
