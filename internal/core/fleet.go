package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/disk"
	"repro/internal/optimize"
	"repro/internal/trace"
)

// Fleet manages tuned scrubbers across a set of disks, each with its own
// workload profile — the datacenter deployment the paper's conclusions
// point at ("the simulations can be repeated to adapt the parameter
// values if the workload changes substantially").
type Fleet struct {
	members map[string]*member
	goal    optimize.Goal
}

type member struct {
	name   string
	sys    *System
	choice optimize.Choice
}

// NewFleet creates an empty fleet with a shared slowdown goal.
func NewFleet(goal optimize.Goal) *Fleet {
	return &Fleet{members: make(map[string]*member), goal: goal}
}

// Add tunes and registers one disk under the fleet's goal. The returned
// Choice records the tuned parameters.
func (f *Fleet) Add(name string, m disk.Model, profile []trace.Record, alg AlgorithmKind) (optimize.Choice, error) {
	if _, dup := f.members[name]; dup {
		return optimize.Choice{}, fmt.Errorf("core: fleet member %q already exists", name)
	}
	sys, choice, err := NewTuned(profile, m, f.goal, alg)
	if err != nil {
		return optimize.Choice{}, fmt.Errorf("core: fleet member %q: %w", name, err)
	}
	f.members[name] = &member{name: name, sys: sys, choice: choice}
	return choice, nil
}

// Len returns the number of members.
func (f *Fleet) Len() int { return len(f.members) }

// System returns a member's System for direct access (e.g. LSE
// injection, workload attachment), or nil if absent.
func (f *Fleet) System(name string) *System {
	m, ok := f.members[name]
	if !ok {
		return nil
	}
	return m.sys
}

// Start begins scrubbing on every member.
func (f *Fleet) Start() {
	for _, m := range f.members {
		m.sys.Start()
	}
}

// RunFor advances every member's simulation by d. Members are
// independent simulations (one per spindle), so order does not matter;
// it is fixed for determinism anyway.
func (f *Fleet) RunFor(d time.Duration) error {
	for _, name := range f.names() {
		if err := f.members[name].sys.RunFor(d); err != nil {
			return fmt.Errorf("core: fleet member %q: %w", name, err)
		}
	}
	return nil
}

// MemberReport pairs a member's identity with its campaign report and
// tuned parameters.
type MemberReport struct {
	Name      string
	Choice    optimize.Choice
	Report    Report
	PassHours float64 // full-pass ETA at the current scrub rate
}

// Reports returns per-member reports sorted by name, plus the fleet's
// aggregate scrub rate.
func (f *Fleet) Reports() ([]MemberReport, float64) {
	var out []MemberReport
	total := 0.0
	for _, name := range f.names() {
		m := f.members[name]
		rep := m.sys.Report()
		mr := MemberReport{Name: name, Choice: m.choice, Report: rep}
		if rep.ScrubMBps > 0 {
			mr.PassHours = float64(m.sys.Disk.Capacity()) / (rep.ScrubMBps * 1e6) / 3600
		}
		total += rep.ScrubMBps
		out = append(out, mr)
	}
	return out, total
}

func (f *Fleet) names() []string {
	names := make([]string, 0, len(f.members))
	for n := range f.members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Remove drops a member from the fleet (hot removal; the paper's
// framework "matching is updated when devices are inserted/removed").
// The member's simulation is simply abandoned.
func (f *Fleet) Remove(name string) error {
	if _, ok := f.members[name]; !ok {
		return fmt.Errorf("core: no fleet member %q", name)
	}
	delete(f.members, name)
	return nil
}
