package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/par"
	"repro/internal/trace"
)

// Fleet manages tuned scrubbers across a set of disks, each with its own
// workload profile — the datacenter deployment the paper's conclusions
// point at ("the simulations can be repeated to adapt the parameter
// values if the workload changes substantially").
type Fleet struct {
	members map[string]*member
	goal    optimize.Goal
	health  HealthPolicy
	onEvict func(Eviction)
}

type member struct {
	name   string
	sys    *System
	choice optimize.Choice
	obs    *obs.Registry
	health Health
}

// NewFleet creates an empty fleet with a shared slowdown goal.
func NewFleet(goal optimize.Goal) *Fleet {
	return &Fleet{members: make(map[string]*member), goal: goal, health: DefaultHealthPolicy()}
}

// Health is a fleet member's lifecycle state. Transitions are monotone:
// Healthy → Degraded → Failed, driven by CheckHealth from the member's
// LSE lifecycle and block-layer error accounting.
type Health int

const (
	// Healthy: no outstanding latent errors beyond the policy's floor.
	Healthy Health = iota
	// Degraded: undetected latent errors have accumulated past the
	// degrade threshold — scrubbing is losing the race against arrival.
	Degraded
	// Failed: the member crossed a fail threshold (outstanding errors or
	// retry-exhausted requests) and was evicted from the fleet.
	Failed
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Health(%d)", int(h))
	}
}

// HealthPolicy sets the thresholds CheckHealth applies. The zero value
// is replaced by DefaultHealthPolicy's thresholds field-by-field.
type HealthPolicy struct {
	// DegradeOutstanding marks a member Degraded once this many planted
	// errors are outstanding (injected, neither detected nor cleared).
	DegradeOutstanding int64
	// FailOutstanding marks a member Failed at this many outstanding
	// errors.
	FailOutstanding int64
	// FailExhausted marks a member Failed once this many requests have
	// exhausted the block layer's retry budget — the drive is returning
	// hard errors faster than it can recover.
	FailExhausted int64
}

// DefaultHealthPolicy returns the default thresholds: degrade at 8
// outstanding errors, fail at 64 outstanding or the first
// retry-exhausted request.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{DegradeOutstanding: 8, FailOutstanding: 64, FailExhausted: 1}
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	d := DefaultHealthPolicy()
	if p.DegradeOutstanding <= 0 {
		p.DegradeOutstanding = d.DegradeOutstanding
	}
	if p.FailOutstanding <= 0 {
		p.FailOutstanding = d.FailOutstanding
	}
	if p.FailExhausted <= 0 {
		p.FailExhausted = d.FailExhausted
	}
	return p
}

// SetHealthPolicy replaces the thresholds CheckHealth applies. Zero
// fields fall back to DefaultHealthPolicy.
func (f *Fleet) SetHealthPolicy(p HealthPolicy) { f.health = p.withDefaults() }

// Eviction describes one member's graceful removal: its final report and
// tuned parameters, for rebuild hand-off (e.g. seeding a raidsim rebuild
// or re-tuning a replacement with Add).
type Eviction struct {
	Name   string
	Choice optimize.Choice
	Report Report
}

// OnEvict registers a hand-off callback invoked (synchronously, from
// CheckHealth) for every member that transitions to Failed, after the
// member has been removed from the fleet.
func (f *Fleet) OnEvict(fn func(Eviction)) { f.onEvict = fn }

// Health returns a member's lifecycle state. Absent members — including
// evicted ones — report Failed, the terminal state.
func (f *Fleet) Health(name string) Health {
	m, ok := f.members[name]
	if !ok {
		return Failed
	}
	return m.health
}

// CheckHealth evaluates every member against the fleet's HealthPolicy
// and applies transitions in name order (deterministic). Members that
// reach Failed are evicted: removed from the fleet, their final report
// handed to the OnEvict callback. Returns the evictions, in name order.
//
// The caller decides the cadence — typically after each RunFor slice —
// so simulation advancement stays free of hidden membership changes.
func (f *Fleet) CheckHealth() []Eviction {
	var evicted []Eviction
	for _, name := range f.names() {
		m := f.members[name]
		h := f.evaluate(m)
		if h <= m.health { // monotone: never heal
			continue
		}
		m.health = h
		if h != Failed {
			continue
		}
		ev := Eviction{Name: name, Choice: m.choice, Report: m.sys.Report()}
		delete(f.members, name)
		evicted = append(evicted, ev)
		if f.onEvict != nil {
			f.onEvict(ev)
		}
	}
	return evicted
}

func (f *Fleet) evaluate(m *member) Health {
	var outstanding int64
	if m.sys.Faults != nil {
		outstanding = m.sys.Faults.Stats().Outstanding()
	}
	qs := m.sys.Queue.Stats()
	switch {
	case outstanding >= f.health.FailOutstanding || qs.RetryExhausted >= f.health.FailExhausted:
		return Failed
	case outstanding >= f.health.DegradeOutstanding:
		return Degraded
	default:
		return Healthy
	}
}

// Add tunes and registers one disk under the fleet's goal. The returned
// Choice records the tuned parameters.
func (f *Fleet) Add(name string, m disk.Model, profile []trace.Record, alg AlgorithmKind) (optimize.Choice, error) {
	if _, dup := f.members[name]; dup {
		return optimize.Choice{}, fmt.Errorf("core: fleet member %q already exists", name)
	}
	sys, choice, err := NewTuned(profile, m, f.goal, alg)
	if err != nil {
		return optimize.Choice{}, fmt.Errorf("core: fleet member %q: %w", name, err)
	}
	f.members[name] = &member{name: name, sys: sys, choice: choice}
	return choice, nil
}

// AddSystem registers a pre-built System under name, skipping tuning —
// for callers that configure members explicitly (sweeps, comparisons
// against the sharded fleet engine). The member's Choice stays zero.
func (f *Fleet) AddSystem(name string, sys *System) error {
	if _, dup := f.members[name]; dup {
		return fmt.Errorf("core: fleet member %q already exists", name)
	}
	f.members[name] = &member{name: name, sys: sys}
	return nil
}

// MemberSpec describes one disk to tune into the fleet.
type MemberSpec struct {
	Name    string
	Model   disk.Model
	Profile []trace.Record
	Alg     AlgorithmKind
}

// TuneAll tunes every spec concurrently over workers goroutines (0 means
// GOMAXPROCS) without registering anything — the what-if counterpart of
// AddAll. The returned choices align with specs; a failed spec leaves a
// zero Choice and contributes a name-wrapped error to the joined error.
// Each member's binary-search tuning is independent, so the choices are
// identical to a sequential AutoTune loop for every worker count.
func (f *Fleet) TuneAll(ctx context.Context, workers int, specs []MemberSpec) ([]optimize.Choice, error) {
	choices := make([]optimize.Choice, len(specs))
	err := par.ForEach(ctx, par.Workers(workers), len(specs), func(_ context.Context, i int) error {
		sp := specs[i]
		c, err := AutoTune(sp.Profile, sp.Model, f.goal)
		if err != nil {
			return fmt.Errorf("core: fleet member %q: %w", sp.Name, err)
		}
		choices[i] = c
		return nil
	})
	return choices, err
}

// AddAll tunes and registers the specs, spreading the per-member tuning
// over workers goroutines (0 means GOMAXPROCS). Registration happens
// serially in spec order after all tuning finishes, so the resulting
// fleet — members, choices, duplicate handling — is identical to calling
// Add in a loop. Failed specs are skipped (best effort, like the loop)
// and reported in the joined error.
func (f *Fleet) AddAll(ctx context.Context, workers int, specs []MemberSpec) ([]optimize.Choice, error) {
	type built struct {
		sys    *System
		choice optimize.Choice
		err    error
		ran    bool
	}
	outs := make([]built, len(specs))
	ferr := par.ForEach(ctx, par.Workers(workers), len(specs), func(_ context.Context, i int) error {
		sp := specs[i]
		outs[i].ran = true
		outs[i].sys, outs[i].choice, outs[i].err = NewTuned(sp.Profile, sp.Model, f.goal, sp.Alg)
		return nil
	})
	choices := make([]optimize.Choice, len(specs))
	var errs []error
	for i, sp := range specs {
		switch {
		case !outs[i].ran:
			// Canceled before dispatch; ferr already carries the context error.
		case outs[i].err != nil:
			errs = append(errs, fmt.Errorf("core: fleet member %q: %w", sp.Name, outs[i].err))
		default:
			if _, dup := f.members[sp.Name]; dup {
				errs = append(errs, fmt.Errorf("core: fleet member %q already exists", sp.Name))
				continue
			}
			f.members[sp.Name] = &member{name: sp.Name, sys: outs[i].sys, choice: outs[i].choice}
			choices[i] = outs[i].choice
		}
	}
	if ferr != nil {
		errs = append(errs, ferr)
	}
	return choices, errors.Join(errs...)
}

// Len returns the number of members.
func (f *Fleet) Len() int { return len(f.members) }

// System returns a member's System for direct access (e.g. LSE
// injection, workload attachment), or nil if absent.
func (f *Fleet) System(name string) *System {
	m, ok := f.members[name]
	if !ok {
		return nil
	}
	return m.sys
}

// InstrumentAll gives every member its own metrics registry and
// instruments its full stack against it. Registries are strictly
// per-member — members are independent simulations, and sharing a
// registry across them would race under parallel runs. Safe to call on
// a fleet that is partially instrumented; already-instrumented members
// keep their registry.
func (f *Fleet) InstrumentAll(opts ...obs.Option) {
	for _, name := range f.names() {
		m := f.members[name]
		if m.obs != nil {
			continue
		}
		m.obs = obs.New(opts...)
		m.sys.Instrument(m.obs)
	}
}

// Registry returns a member's metrics registry, or nil if the member is
// absent or not instrumented.
func (f *Fleet) Registry(name string) *obs.Registry {
	m, ok := f.members[name]
	if !ok {
		return nil
	}
	return m.obs
}

// Start begins scrubbing on every member.
func (f *Fleet) Start() {
	for _, m := range f.members {
		m.sys.Start()
	}
}

// RunFor advances every member's simulation by d. Members are
// independent simulations (one per spindle), so order does not matter;
// it is fixed for determinism anyway.
func (f *Fleet) RunFor(d time.Duration) error {
	for _, name := range f.names() {
		if err := f.members[name].sys.RunFor(context.Background(), d); err != nil {
			return fmt.Errorf("core: fleet member %q: %w", name, err)
		}
	}
	return nil
}

// RunAllFor advances every member's simulation by d, spreading members
// over workers goroutines (0 means GOMAXPROCS). Members are independent
// simulations sharing no state (per-member registries included), so the
// result is identical to RunFor for every worker count.
func (f *Fleet) RunAllFor(ctx context.Context, workers int, d time.Duration) error {
	names := f.names()
	return par.ForEach(ctx, par.Workers(workers), len(names), func(ctx context.Context, i int) error {
		if err := f.members[names[i]].sys.RunFor(ctx, d); err != nil {
			return fmt.Errorf("core: fleet member %q: %w", names[i], err)
		}
		return nil
	})
}

// MemberReport pairs a member's identity with its campaign report and
// tuned parameters.
type MemberReport struct {
	Name      string
	Choice    optimize.Choice
	Report    Report
	PassHours float64 // full-pass ETA at the current scrub rate
}

// Reports returns per-member reports sorted by name, plus the fleet's
// aggregate scrub rate.
func (f *Fleet) Reports() ([]MemberReport, float64) {
	var out []MemberReport
	total := 0.0
	for _, name := range f.names() {
		m := f.members[name]
		rep := m.sys.Report()
		mr := MemberReport{Name: name, Choice: m.choice, Report: rep}
		if rep.ScrubMBps > 0 {
			mr.PassHours = float64(m.sys.Device.Capacity()) / (rep.ScrubMBps * 1e6) / 3600
		}
		total += rep.ScrubMBps
		out = append(out, mr)
	}
	return out, total
}

func (f *Fleet) names() []string {
	names := make([]string, 0, len(f.members))
	for n := range f.members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Remove drops a member from the fleet (hot removal; the paper's
// framework "matching is updated when devices are inserted/removed").
// The member's simulation is simply abandoned.
func (f *Fleet) Remove(name string) error {
	if _, ok := f.members[name]; !ok {
		return fmt.Errorf("core: no fleet member %q", name)
	}
	delete(f.members, name)
	return nil
}
