package core

import (
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/iosched"
	"repro/internal/schedpolicy"
	"repro/internal/scrub"
)

// SystemState is the compact serializable state of a parked System: the
// kernel clock plus one sub-state per component, each carrying its own
// pending events as (at, seq) records. Configuration is not embedded —
// RestoreSystem rebuilds the stack from the same Config and applies this
// state on top, which keeps a million parked members cheap.
type SystemState struct {
	Now   time.Duration
	Seq   uint64
	Fired uint64

	Disk  *disk.State    // rotational device state (nil for SSD systems)
	SSD   *disk.SSDState // solid-state device state (nil for disk systems)
	Queue *blockdev.QState
	CFQ   *iosched.CFQState
	Scrub *scrub.State
	Fault *fault.InjectorState // nil when built without WithFaults

	// Pending Kick timer, when armed.
	HasKick bool
	KickAt  time.Duration
	KickSeq uint64

	Policy *schedpolicy.WaitingState // nil unless PolicyWaiting
}

// Parkable reports (as a nil error) whether the system is at a state a
// snapshot can represent: elevator drained, no barrier, any in-flight
// request classifiable as the scrubber's, and a scheduling policy without
// hidden state. A non-parkable system becomes parkable after a handful of
// events — the fleet engine steps it forward until this returns nil.
func (sys *System) Parkable() error {
	if !sys.Queue.Quiesced() {
		return fmt.Errorf("core: %d requests queued", sys.Queue.Pending())
	}
	if r := sys.Queue.Inflight(); r != nil {
		if r.MergedCount() > 0 {
			return fmt.Errorf("core: in-flight request carries merged requests")
		}
		if sys.Scrubber.InflightKind() == scrub.KindNone {
			return fmt.Errorf("core: in-flight request is not the scrubber's")
		}
	}
	switch sys.policy.(type) {
	case nil, *schedpolicy.Waiting:
	default:
		return fmt.Errorf("core: policy %s carries unserializable predictor state", sys.policy.Name())
	}
	if sys.cfq == nil {
		return fmt.Errorf("core: scheduler %q has no serializable state; only cfq systems park", sys.cfg.Sched)
	}
	return nil
}

// classifyInflight maps the in-flight request to the scrubber completion
// kind that owns its callback. Fleet members run no foreground workload,
// so every in-flight request must be the scrubber's.
func (sys *System) classifyInflight(r *blockdev.Request) (uint8, error) {
	k := sys.Scrubber.InflightKind()
	if k == scrub.KindNone {
		return 0, fmt.Errorf("core: in-flight request is not the scrubber's")
	}
	return uint8(k), nil
}

// Snapshot captures the full serializable state of a parked system.
func (sys *System) Snapshot() (*SystemState, error) {
	if err := sys.Parkable(); err != nil {
		return nil, err
	}
	now, seq, fired := sys.Sim.Clock()
	st := &SystemState{Now: now, Seq: seq, Fired: fired}
	switch dev := sys.Device.(type) {
	case *disk.Disk:
		st.Disk = dev.State()
	case *disk.SSD:
		st.SSD = dev.State()
	default:
		return nil, fmt.Errorf("core: device %T is not snapshotable", sys.Device)
	}
	var err error
	if st.Queue, err = sys.Queue.State(sys.classifyInflight); err != nil {
		return nil, err
	}
	if st.CFQ, err = sys.cfq.State(); err != nil {
		return nil, err
	}
	if st.Scrub, err = sys.Scrubber.State(); err != nil {
		return nil, err
	}
	if sys.Faults != nil {
		if st.Fault, err = sys.Faults.State(); err != nil {
			return nil, err
		}
	}
	if sys.kickEv != nil {
		st.HasKick = true
		st.KickAt = sys.kickEv.At()
		st.KickSeq = sys.kickEv.Seq()
	}
	if w, ok := sys.policy.(*schedpolicy.Waiting); ok {
		st.Policy = w.State()
	}
	return st, nil
}

// RestoreSystem rebuilds a parked system: a fresh stack from the same
// Config (wiring order identical to New, so subscriber order — and with
// it determinism — is preserved), then the snapshot applied on top. The
// clock restores first so every component's re-enqueued event keeps its
// recorded sequence number.
func RestoreSystem(cfg Config, st *SystemState) (*System, error) {
	sys, err := build(cfg)
	if err != nil {
		return nil, err
	}
	if sys.cfq == nil {
		return nil, fmt.Errorf("core: scheduler %q has no serializable state; only cfq systems restore", cfg.Sched)
	}
	if err := sys.Sim.RestoreClock(st.Now, st.Seq, st.Fired); err != nil {
		return nil, err
	}
	switch dev := sys.Device.(type) {
	case *disk.Disk:
		if st.Disk == nil {
			return nil, fmt.Errorf("core: snapshot carries no rotational state for %s", dev.ModelName())
		}
		dev.RestoreState(st.Disk)
	case *disk.SSD:
		if st.SSD == nil {
			return nil, fmt.Errorf("core: snapshot carries no SSD state for %s", dev.ModelName())
		}
		dev.RestoreState(st.SSD)
	default:
		return nil, fmt.Errorf("core: device %T is not snapshotable", sys.Device)
	}
	if err := sys.cfq.RestoreState(st.CFQ); err != nil {
		return nil, err
	}
	if err := sys.Scrubber.RestoreState(st.Scrub); err != nil {
		return nil, err
	}
	// The queue restores after the scrubber so callback resolution sees
	// the restored in-flight classification.
	if err := sys.Queue.RestoreState(st.Queue, func(kind uint8) func(*blockdev.Request) {
		return sys.Scrubber.CallbackFor(scrub.CompletionKind(kind))
	}); err != nil {
		return nil, err
	}
	if st.Fault != nil {
		if sys.Faults == nil {
			return nil, fmt.Errorf("core: snapshot carries fault state but config has no fault model")
		}
		if err := sys.Faults.RestoreState(st.Fault); err != nil {
			return nil, err
		}
	} else if sys.Faults != nil {
		return nil, fmt.Errorf("core: config has a fault model but snapshot carries no fault state")
	}
	if st.HasKick {
		ev, err := sys.Sim.RestoreAt(st.KickAt, st.KickSeq, sys.kickFn)
		if err != nil {
			return nil, fmt.Errorf("core: restore kick timer: %w", err)
		}
		sys.kickEv = ev
	}
	if st.Policy != nil {
		w, ok := sys.policy.(*schedpolicy.Waiting)
		if !ok {
			return nil, fmt.Errorf("core: snapshot carries waiting-policy state but config policy is %v", cfg.Policy)
		}
		if err := w.RestoreState(st.Policy); err != nil {
			return nil, err
		}
	}
	return sys, nil
}
