package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/trace"
)

func testSpecs(t *testing.T, n int) []MemberSpec {
	t.Helper()
	names := []string{"HPc3t3d0", "HPc6t5d0", "MSRsrc11", "MSRusr1"}
	if n > len(names) {
		t.Fatalf("want %d specs, have %d names", n, len(names))
	}
	m := disk.HitachiUltrastar15K450()
	specs := make([]MemberSpec, n)
	for i, name := range names[:n] {
		spec, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		specs[i] = MemberSpec{
			Name:    name,
			Model:   m,
			Profile: spec.Generate(3, 30*time.Minute).Records,
			Alg:     Staggered,
		}
	}
	return specs
}

// TestFleetTuneAllMatchesAddLoop is the determinism proof for the fleet:
// concurrent TuneAll over 8 workers picks exactly the choices a
// sequential Add loop picks.
func TestFleetTuneAllMatchesAddLoop(t *testing.T) {
	specs := testSpecs(t, 3)

	serial := NewFleet(testGoal())
	want := make([]string, len(specs))
	for i, sp := range specs {
		choice, err := serial.Add(sp.Name, sp.Model, sp.Profile, sp.Alg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = choice.String()
	}

	parallel := NewFleet(testGoal())
	choices, err := parallel.TuneAll(context.Background(), 8, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if got := choices[i].String(); got != want[i] {
			t.Fatalf("%s: TuneAll chose %q, Add loop chose %q", specs[i].Name, got, want[i])
		}
	}
	if parallel.Len() != 0 {
		t.Fatal("TuneAll registered members")
	}
}

// TestFleetAddAllMatchesAddLoop checks AddAll builds the same fleet as a
// sequential Add loop: same members, same choices, same reports.
func TestFleetAddAllMatchesAddLoop(t *testing.T) {
	specs := testSpecs(t, 2)

	serial := NewFleet(testGoal())
	for _, sp := range specs {
		if _, err := serial.Add(sp.Name, sp.Model, sp.Profile, sp.Alg); err != nil {
			t.Fatal(err)
		}
	}
	parallel := NewFleet(testGoal())
	if _, err := parallel.AddAll(context.Background(), 8, specs); err != nil {
		t.Fatal(err)
	}
	if parallel.Len() != serial.Len() {
		t.Fatalf("Len: AddAll %d, Add loop %d", parallel.Len(), serial.Len())
	}
	for _, fl := range []*Fleet{serial, parallel} {
		fl.Start()
		if err := fl.RunFor(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	sr, stotal := serial.Reports()
	pr, ptotal := parallel.Reports()
	if stotal != ptotal {
		t.Fatalf("aggregate rate: AddAll %v, Add loop %v", ptotal, stotal)
	}
	for i := range sr {
		if sr[i].Name != pr[i].Name || sr[i].Choice != pr[i].Choice || sr[i].Report != pr[i].Report {
			t.Fatalf("member %d diverged:\nAdd loop: %+v\nAddAll:   %+v", i, sr[i], pr[i])
		}
	}
}

func TestFleetAddAllDuplicates(t *testing.T) {
	specs := testSpecs(t, 1)
	specs = append(specs, specs[0]) // duplicate name within the batch
	fl := NewFleet(testGoal())
	_, err := fl.AddAll(context.Background(), 4, specs)
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate not reported: %v", err)
	}
	if fl.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (first wins, like an Add loop)", fl.Len())
	}
}

func TestFleetAddAllCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fl := NewFleet(testGoal())
	_, err := fl.AddAll(ctx, 2, testSpecs(t, 2))
	if err == nil {
		t.Fatal("canceled AddAll reported success")
	}
	if fl.Len() != 0 {
		t.Fatalf("Len = %d after canceled AddAll", fl.Len())
	}
}
