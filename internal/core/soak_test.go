package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/optimize"
	"repro/internal/trace"
)

// TestSoakDayWithRetuning runs a full simulated day of foreground traffic
// against a Waiting-policy scrubber that re-tunes itself every four
// hours, asserting the long-haul invariants a production deployment
// depends on: monotone scrub progress, bounded collisions, retunes that
// keep meeting the goal, and no stalls.
func TestSoakDayWithRetuning(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	sys, err := NewFromConfig(Config{Policy: PolicyWaiting, WaitThreshold: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := sys.AttachRecorder(6 * time.Hour)
	spec, ok := trace.ByName("HPc3t3d0")
	if !ok {
		t.Fatal("trace missing")
	}
	day := spec.Generate(13, 24*time.Hour)
	driveWorkload(sys, day)
	sys.Start()

	goal := optimize.Goal{MeanSlowdown: 2 * time.Millisecond, MaxSlowdown: 50 * time.Millisecond}
	var (
		prevScrubbed float64
		retunes      int
	)
	for hour := 1; hour <= 24; hour++ {
		if err := sys.RunFor(context.Background(), time.Hour); err != nil {
			t.Fatal(err)
		}
		rep := sys.Report()
		// Progress is cumulative: scrubbed volume never shrinks.
		scrubbed := rep.ScrubMBps * sys.Sim.Now().Seconds()
		if scrubbed+1 < prevScrubbed {
			t.Fatalf("hour %d: scrubbed volume shrank (%.0f -> %.0f)", hour, prevScrubbed, scrubbed)
		}
		prevScrubbed = scrubbed
		if hour%4 == 0 && rec.Len() > 64 {
			choice, err := rec.Retune(goal)
			if err != nil {
				t.Fatalf("hour %d: retune: %v", hour, err)
			}
			if choice.Result.MeanSlowdown() > goal.MeanSlowdown {
				t.Fatalf("hour %d: retune violates goal: %v", hour, choice.Result.MeanSlowdown())
			}
			retunes++
		}
	}
	rep := sys.Report()
	if retunes < 5 {
		t.Fatalf("only %d retunes happened", retunes)
	}
	if rep.Passes < 1 {
		t.Fatalf("no full pass in a day: progress %.1f%% at %.1f MB/s",
			100*rep.PassProgress, rep.ScrubMBps)
	}
	if rep.FgRequests < int64(len(day.Records)) {
		t.Fatalf("foreground requests lost: %d of %d", rep.FgRequests, len(day.Records))
	}
	if rep.CollisionRate > 0.5 {
		t.Fatalf("collision rate %.3f implausibly high for a waiting policy", rep.CollisionRate)
	}
	t.Logf("day done: %.1f MB/s scrub, %d passes, collision rate %.4f, %d retunes",
		rep.ScrubMBps, rep.Passes, rep.CollisionRate, retunes)
}
