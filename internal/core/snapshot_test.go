package core_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/scrub"
)

// snapshotVariants covers every parkable configuration family: both
// algorithms, both issuing modes, fixed-delay and waiting policies,
// escalation, retries, uniform and bursty fault models, and a
// fault-free system.
func snapshotVariants() map[string]core.Config {
	m := disk.DemoSmall()
	return map[string]core.Config{
		"fixed-seq-uniform": {
			Model:      &m,
			Algorithm:  core.Sequential,
			Policy:     core.PolicyFixedDelay,
			Delay:      200 * time.Millisecond,
			ReqBytes:   256 << 10,
			AutoRepair: true,
			Faults:     fault.Uniform{RatePerHour: 60},
			FaultSeed:  11,
		},
		"waiting-stag-bursty": {
			Model:         &m,
			Algorithm:     core.Staggered,
			Regions:       64,
			Policy:        core.PolicyWaiting,
			WaitThreshold: 50 * time.Millisecond,
			ReqBytes:      128 << 10,
			AutoRepair:    true,
			Escalate:      true,
			Retry:         blockdev.RetryPolicy{MaxRetries: 2, Backoff: 5 * time.Millisecond},
			Faults:        fault.Bursty{RatePerHour: 90, MeanBurst: 3, ClusterSectors: 512},
			FaultSeed:     13,
		},
		"user-mode-uniform": {
			Model:     &m,
			Algorithm: core.Sequential,
			Mode:      scrub.UserMode,
			Policy:    core.PolicyFixedDelay,
			Delay:     300 * time.Millisecond,
			ReqBytes:  128 << 10,
			Faults:    fault.Uniform{RatePerHour: 40},
			FaultSeed: 17,
		},
		"no-faults": {
			Model:     &m,
			Algorithm: core.Sequential,
			Policy:    core.PolicyFixedDelay,
			Delay:     150 * time.Millisecond,
			ReqBytes:  256 << 10,
		},
	}
}

func buildSys(t *testing.T, cfg core.Config) (*core.System, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	cfg.Obs = reg
	sys, err := core.NewFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	return sys, reg
}

// rollToParkable steps single events until the system reaches a state a
// snapshot can represent — the same roll-forward the fleet engine does
// at a slice boundary.
func rollToParkable(t *testing.T, sys *core.System) {
	t.Helper()
	for i := 0; i < 1<<20; i++ {
		if sys.Parkable() == nil {
			return
		}
		if !sys.Sim.Step() {
			t.Fatalf("event queue drained while not parkable: %v", sys.Parkable())
		}
	}
	t.Fatalf("still not parkable after 2^20 events: %v", sys.Parkable())
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// finish drives a system to exactly horizon and returns its observable
// identity: report, obs snapshot, and kernel clock.
func finish(t *testing.T, sys *core.System, reg *obs.Registry, horizon time.Duration) (string, string, string) {
	t.Helper()
	if d := horizon - sys.Sim.Now(); d > 0 {
		if err := sys.RunFor(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	now, seq, fired := sys.Sim.Clock()
	clock := mustJSON(t, []any{now, seq, fired})
	return mustJSON(t, sys.Report()), mustJSON(t, reg.Snapshot()), clock
}

// TestSnapshotRoundTrip is the round-trip property: park a system
// mid-run, gob the snapshot through bytes, restore it into a fresh
// stack, then drive the never-parked reference, the parked original and
// the restored copy to the same horizon — all three must be
// byte-identical in report, obs and clock.
func TestSnapshotRoundTrip(t *testing.T) {
	const horizon = 90 * time.Second
	cuts := []time.Duration{
		7 * time.Second,
		23*time.Second + 500*time.Millisecond,
		61 * time.Second,
	}
	for name, cfg := range snapshotVariants() {
		t.Run(name, func(t *testing.T) {
			live, liveReg := buildSys(t, cfg)
			wantRep, wantObs, wantClock := finish(t, live, liveReg, horizon)

			for _, cut := range cuts {
				orig, origReg := buildSys(t, cfg)
				if err := orig.RunFor(context.Background(), cut); err != nil {
					t.Fatal(err)
				}
				rollToParkable(t, orig)

				st, err := orig.Snapshot()
				if err != nil {
					t.Fatalf("cut %v: %v", cut, err)
				}
				var buf bytes.Buffer
				if err := gob.NewEncoder(&buf).Encode(st); err != nil {
					t.Fatalf("cut %v: encode: %v", cut, err)
				}
				var rt core.SystemState
				if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&rt); err != nil {
					t.Fatalf("cut %v: decode: %v", cut, err)
				}

				// The restored stack gets a fresh registry primed with the
				// parked system's counts, exactly as the fleet engine does.
				restReg := obs.New()
				if err := restReg.MergeSnapshot(origReg.Snapshot()); err != nil {
					t.Fatal(err)
				}
				rcfg := cfg
				rcfg.Obs = restReg
				rest, err := core.RestoreSystem(rcfg, &rt)
				if err != nil {
					t.Fatalf("cut %v: restore: %v", cut, err)
				}

				// Snapshotting must not perturb the original.
				gotRep, gotObs, gotClock := finish(t, orig, origReg, horizon)
				if gotRep != wantRep || gotObs != wantObs || gotClock != wantClock {
					t.Errorf("cut %v: parked original diverged from live reference\nlive rep:   %s\nparked rep: %s", cut, wantRep, gotRep)
				}
				gotRep, gotObs, gotClock = finish(t, rest, restReg, horizon)
				if gotRep != wantRep {
					t.Errorf("cut %v: restored report diverged\nlive:     %s\nrestored: %s", cut, wantRep, gotRep)
				}
				if gotObs != wantObs {
					t.Errorf("cut %v: restored obs diverged\nlive:     %s\nrestored: %s", cut, wantObs, gotObs)
				}
				if gotClock != wantClock {
					t.Errorf("cut %v: restored clock diverged: live %s, restored %s", cut, wantClock, gotClock)
				}
			}
		})
	}
}

// TestSnapshotRejectsUnparkable pins the guard rails: a system with a
// foreign (non-scrubber) request in flight must refuse to snapshot
// rather than silently drop the request's callback.
func TestSnapshotRejectsUnparkable(t *testing.T) {
	cfg := snapshotVariants()["no-faults"]
	sys, _ := buildSys(t, cfg)
	if err := sys.RunFor(context.Background(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	rollToParkable(t, sys)
	r := sys.Queue.GetRequest()
	r.Op = disk.OpRead
	r.LBA = 0
	r.Sectors = 8
	r.Origin = blockdev.Foreground
	sys.Queue.Submit(r)
	if sys.Parkable() == nil {
		t.Fatal("system with a foreign request reported parkable")
	}
	if _, err := sys.Snapshot(); err == nil {
		t.Fatal("Snapshot succeeded with a foreign request in the queue")
	}
}

// TestRestoreConfigMismatch pins restore validation: a snapshot with
// fault state must not restore into a fault-free config and vice versa.
func TestRestoreConfigMismatch(t *testing.T) {
	cfg := snapshotVariants()["fixed-seq-uniform"]
	sys, _ := buildSys(t, cfg)
	if err := sys.RunFor(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rollToParkable(t, sys)
	st, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bare := cfg
	bare.Faults = nil
	bare.FaultSeed = 0
	if _, err := core.RestoreSystem(bare, st); err == nil {
		t.Error("fault-state snapshot restored into fault-free config")
	}
	st.Fault = nil
	if _, err := core.RestoreSystem(cfg, st); err == nil {
		t.Error("fault-free snapshot restored into fault-model config")
	}
}
