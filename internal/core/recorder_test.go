package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/disk"
	"repro/internal/optimize"
	"repro/internal/trace"
)

// driveWorkload submits trace records into a System's queue open-loop.
func driveWorkload(sys *System, tr *trace.Trace) {
	for _, rec := range tr.Records {
		rec := rec
		sys.Sim.At(rec.Arrival, func() {
			op := disk.OpRead
			if rec.Write {
				op = disk.OpWrite
			}
			lba := rec.LBA
			sectors := rec.Sectors
			if lba+sectors > sys.Disk.Sectors() {
				lba = 0
			}
			sys.Queue.Submit(&blockdev.Request{
				Op: op, LBA: lba, Sectors: sectors,
				Class: blockdev.ClassBE, Origin: blockdev.Foreground,
			})
		})
	}
}

func TestRecorderCapturesForegroundOnly(t *testing.T) {
	sys, err := NewFromConfig(Config{Policy: PolicyWaiting, WaitThreshold: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := sys.AttachRecorder(0)
	spec, _ := trace.ByName("HPc3t3d0")
	tr := spec.Generate(7, 2*time.Minute)
	driveWorkload(sys, tr)
	sys.Start()
	if err := sys.RunFor(context.Background(), 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	// The scrubber issued many requests; the recorder must hold only the
	// foreground ones.
	if rec.Len() != len(tr.Records) {
		t.Fatalf("recorded %d, workload had %d", rec.Len(), len(tr.Records))
	}
	records := rec.Records()
	if records[0].Arrival != 0 {
		t.Fatal("records not rebased")
	}
	for i := 1; i < len(records); i++ {
		if records[i].Arrival < records[i-1].Arrival {
			t.Fatal("records out of order")
		}
	}
}

func TestRecorderWindowTrims(t *testing.T) {
	sys, err := NewFromConfig(Config{Policy: PolicyWaiting})
	if err != nil {
		t.Fatal(err)
	}
	rec := sys.AttachRecorder(10 * time.Second)
	// One request per second for a minute: only ~the last 10s survive.
	for i := 0; i < 60; i++ {
		at := time.Duration(i) * time.Second
		sys.Sim.At(at, func() {
			sys.Queue.Submit(&blockdev.Request{
				Op: disk.OpRead, LBA: 0, Sectors: 8,
				Class: blockdev.ClassBE, Origin: blockdev.Foreground,
			})
		})
	}
	if err := sys.RunFor(context.Background(), time.Minute); err != nil {
		t.Fatal(err)
	}
	if rec.Len() > 20 {
		t.Fatalf("window retained %d records, want ~10", rec.Len())
	}
}

func TestRetuneAppliesParameters(t *testing.T) {
	sys, err := NewFromConfig(Config{Policy: PolicyWaiting, WaitThreshold: 500 * time.Millisecond, ReqBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rec := sys.AttachRecorder(0)
	spec, _ := trace.ByName("HPc3t3d0")
	tr := spec.Generate(9, 15*time.Minute)
	driveWorkload(sys, tr)
	sys.Start()
	if err := sys.RunFor(context.Background(), 16*time.Minute); err != nil {
		t.Fatal(err)
	}
	before := sys.Config()
	choice, err := rec.Retune(optimize.Goal{
		MeanSlowdown: 2 * time.Millisecond,
		MaxSlowdown:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := sys.Config()
	if after.ReqBytes != choice.ReqSectors*disk.SectorSize {
		t.Fatalf("size not applied: %d vs choice %d", after.ReqBytes, choice.ReqSectors*disk.SectorSize)
	}
	if after.WaitThreshold != choice.Threshold {
		t.Fatal("threshold not applied")
	}
	if after.ReqBytes == before.ReqBytes && after.WaitThreshold == before.WaitThreshold {
		t.Fatal("retune was a no-op on a deliberately mis-tuned system")
	}
	// The system keeps scrubbing with the new parameters.
	if err := sys.RunFor(context.Background(), time.Minute); err != nil {
		t.Fatal(err)
	}
	if sys.Report().ScrubMBps <= 0 {
		t.Fatal("no scrubbing after retune")
	}
}

func TestRetuneErrors(t *testing.T) {
	sys, err := NewFromConfig(Config{Policy: PolicyCFQIdle})
	if err != nil {
		t.Fatal(err)
	}
	rec := sys.AttachRecorder(0)
	if _, err := rec.Retune(optimize.Goal{MeanSlowdown: time.Millisecond}); err == nil {
		t.Fatal("retune on cfq-idle accepted")
	}
	sys2, err := NewFromConfig(Config{Policy: PolicyWaiting})
	if err != nil {
		t.Fatal(err)
	}
	rec2 := sys2.AttachRecorder(0)
	if _, err := rec2.Retune(optimize.Goal{MeanSlowdown: time.Millisecond}); err == nil {
		t.Fatal("retune with no history accepted")
	}
	if rec2.Records() != nil {
		t.Fatal("empty recorder returned records")
	}
}
