package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/optimize"
	"repro/internal/trace"
)

func TestNewDefaults(t *testing.T) {
	sys, err := NewFromConfig(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Config()
	if cfg.Policy != PolicyWaiting || cfg.Algorithm != Staggered ||
		cfg.Regions != 128 || cfg.ReqBytes != 64<<10 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := disk.HitachiUltrastar15K450()
	bad.RPM = 0
	if _, err := NewFromConfig(Config{Model: &bad}); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := NewFromConfig(Config{Algorithm: AlgorithmKind(99)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := NewFromConfig(Config{Policy: PolicyKind(99)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestIdleSystemScrubsAfterKick(t *testing.T) {
	sys, err := NewFromConfig(Config{Policy: PolicyWaiting, WaitThreshold: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	if err := sys.RunFor(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	if rep.ScrubMBps <= 0 {
		t.Fatalf("idle system never scrubbed: %+v", rep)
	}
	if rep.Policy != "waiting" || rep.Algorithm != "staggered" {
		t.Fatalf("report identity wrong: %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestCFQIdlePolicyScrubs(t *testing.T) {
	sys, err := NewFromConfig(Config{Policy: PolicyCFQIdle, Algorithm: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	if err := sys.RunFor(context.Background(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if sys.Report().ScrubMBps <= 0 {
		t.Fatal("cfq-idle system never scrubbed")
	}
}

func TestFixedDelayPolicyCapsRate(t *testing.T) {
	sys, err := NewFromConfig(Config{Policy: PolicyFixedDelay, Delay: 16 * time.Millisecond, Algorithm: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	if err := sys.RunFor(context.Background(), 4*time.Second); err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	if rep.ScrubMBps <= 0 || rep.ScrubMBps > 3.9 {
		t.Fatalf("fixed-delay throughput %.2f, want (0, 3.9]", rep.ScrubMBps)
	}
}

func TestAutoTuneAndNewTuned(t *testing.T) {
	spec, _ := trace.ByName("HPc3t3d0")
	tr := spec.Generate(5, 20*time.Minute)
	m := disk.HitachiUltrastar15K450()
	goal := optimize.Goal{MeanSlowdown: 2 * time.Millisecond, MaxSlowdown: 50 * time.Millisecond}

	choice, err := AutoTune(tr.Records, m, goal)
	if err != nil {
		t.Fatal(err)
	}
	if choice.ReqSectors < 128 || choice.Threshold <= 0 {
		t.Fatalf("choice = %+v", choice)
	}
	if choice.Result.MeanSlowdown() > goal.MeanSlowdown {
		t.Fatalf("tuned config violates goal: %v", choice.Result.MeanSlowdown())
	}

	sys, c2, err := NewTuned(tr.Records, m, goal, Staggered)
	if err != nil {
		t.Fatal(err)
	}
	if c2.ReqSectors != choice.ReqSectors {
		t.Fatalf("NewTuned choice differs: %d vs %d", c2.ReqSectors, choice.ReqSectors)
	}
	if sys.Config().ReqBytes != choice.ReqSectors*disk.SectorSize {
		t.Fatal("tuned size not applied")
	}
	sys.Start()
	if err := sys.RunFor(context.Background(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if sys.Report().ScrubMBps <= 0 {
		t.Fatal("tuned system never scrubbed on an idle device")
	}
}

func TestAutoTuneErrors(t *testing.T) {
	m := disk.HitachiUltrastar15K450()
	if _, err := AutoTune(nil, m, optimize.Goal{MeanSlowdown: time.Millisecond}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestLSEDetectionEndToEnd(t *testing.T) {
	small := disk.FujitsuMAX3073RC()
	small.CapacityBytes = 256 << 20
	small.Cylinders = 200
	sys, err := NewFromConfig(Config{Model: &small, Policy: PolicyCFQIdle, Algorithm: Staggered, Regions: 16})
	if err != nil {
		t.Fatal(err)
	}
	sys.Disk.InjectLSE(12345)
	sys.Disk.InjectLSE(400000)
	sys.Start()
	if err := sys.RunFor(context.Background(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	if rep.Passes < 1 {
		t.Fatalf("no complete pass: %+v", rep)
	}
	if rep.LSEsFound < 2 {
		t.Fatalf("found %d LSEs, want 2", rep.LSEsFound)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []PolicyKind{PolicyCFQIdle, PolicyFixedDelay, PolicyWaiting, PolicyAR, PolicyARWaiting, PolicyKind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatal("empty policy string")
		}
	}
}

func TestAutoRepairEndToEnd(t *testing.T) {
	small := disk.FujitsuMAX3073RC()
	small.CapacityBytes = 128 << 20
	small.Cylinders = 150
	sys, err := NewFromConfig(Config{
		Model:      &small,
		Policy:     PolicyCFQIdle,
		Algorithm:  Sequential,
		AutoRepair: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Disk.InjectLSE(4000)
	sys.Disk.InjectLSE(88888)
	sys.Start()
	if err := sys.RunFor(context.Background(), 20*time.Second); err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	if rep.LSEsFound != 2 || rep.LSEsRepaired != 2 {
		t.Fatalf("found %d repaired %d, want 2/2", rep.LSEsFound, rep.LSEsRepaired)
	}
	if sys.Disk.LSECount() != 0 {
		t.Fatal("errors still latent")
	}
}
