package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
)

// plantAll is a scripted fault model planting one burst of LBAs shortly
// after start — exact arithmetic for health-threshold tests.
type plantAll struct{ lbas []int64 }

func (p plantAll) Name() string { return "scripted" }
func (p plantAll) NewSource(int64, int64) fault.Source {
	return &plantSource{burst: fault.Burst{At: time.Millisecond, LBAs: p.lbas}}
}

type plantSource struct {
	burst fault.Burst
	done  bool
}

func (s *plantSource) Next() (fault.Burst, bool) {
	if s.done {
		return fault.Burst{}, false
	}
	s.done = true
	return s.burst, true
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(1000 + 8*i)
	}
	return out
}

// TestSystemWithFaultsEndToEnd runs the whole LSE lifecycle through a
// System: a Bursty arrival stream plants errors on an otherwise idle
// demo disk while a Waiting-policy scrubber sweeps, detects, escalates
// and repairs them. The Report must carry the fault clause.
func TestSystemWithFaultsEndToEnd(t *testing.T) {
	small := disk.DemoSmall()
	sys, err := New(&small,
		WithPolicy(PolicyWaiting),
		WithWaitThreshold(50*time.Millisecond),
		WithFaults(fault.Bursty{RatePerHour: 720, MeanBurst: 4, ClusterSectors: 1024}),
		WithFaultSeed(7),
		WithAutoRepair(),
		WithEscalation(),
		WithRetryPolicy(blockdev.RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond, Timeout: 100 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Faults == nil {
		t.Fatal("WithFaults did not attach an injector")
	}
	reg := obs.New()
	sys.Instrument(reg)
	sys.Start()
	if err := sys.RunFor(context.Background(), 30*time.Minute); err != nil {
		t.Fatal(err)
	}

	rep := sys.Report()
	if rep.LSEsInjected == 0 {
		t.Fatal("no LSEs injected in 30 minutes at 720/h")
	}
	if rep.LSEsDetected == 0 {
		t.Fatal("idle-disk scrub sweep detected nothing")
	}
	if rep.LSEsRemapped == 0 {
		t.Fatal("AutoRepair remapped nothing")
	}
	if rep.DetectionRatio <= 0 || rep.MeanTTD <= 0 {
		t.Fatalf("empty derived stats: ratio=%v ttd=%v", rep.DetectionRatio, rep.MeanTTD)
	}
	if !strings.Contains(rep.String(), "faults:") {
		t.Fatalf("Report.String() missing fault clause: %s", rep)
	}
	// The injector's counters flow through the shared registry.
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fault.injected", "fault.time_to_detection"} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Fatalf("snapshot missing %s:\n%s", name, buf.Bytes())
		}
	}
}

// TestNewMatchesNewFromConfig is the compatibility contract for the
// deprecated struct constructor: the same settings expressed as a Config
// and as functional options must build systems that report identically
// after identical runs.
func TestNewMatchesNewFromConfig(t *testing.T) {
	small := disk.DemoSmall()
	model := fault.Bursty{RatePerHour: 720, MeanBurst: 4, ClusterSectors: 1024}
	retry := blockdev.RetryPolicy{MaxRetries: 1, Backoff: time.Millisecond}

	old, err := NewFromConfig(Config{
		Model:         &small,
		Algorithm:     Staggered,
		Policy:        PolicyWaiting,
		WaitThreshold: 50 * time.Millisecond,
		AutoRepair:    true,
		Escalate:      true,
		Retry:         retry,
		Faults:        model,
		FaultSeed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	new_, err := New(&small,
		WithAlgorithm(Staggered),
		WithPolicy(PolicyWaiting),
		WithWaitThreshold(50*time.Millisecond),
		WithAutoRepair(),
		WithEscalation(),
		WithRetryPolicy(retry),
		WithFaults(model),
		WithFaultSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}

	for _, sys := range []*System{old, new_} {
		sys.Start()
		if err := sys.RunFor(context.Background(), 10*time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	a, b := old.Report(), new_.Report()
	if a != b {
		t.Fatalf("reports diverge:\nNewFromConfig: %+v\nNew:           %+v", a, b)
	}
	if a.LSEsInjected == 0 {
		t.Fatal("compat run injected nothing; the comparison proves nothing")
	}
	// The defaulted configs agree on every scalar knob.
	ca, cb := old.Config(), new_.Config()
	if ca.Policy != cb.Policy || ca.Algorithm != cb.Algorithm ||
		ca.WaitThreshold != cb.WaitThreshold || ca.AutoRepair != cb.AutoRepair ||
		ca.Escalate != cb.Escalate || ca.Retry != cb.Retry || ca.FaultSeed != cb.FaultSeed {
		t.Fatalf("configs diverge:\nNewFromConfig: %+v\nNew:           %+v", ca, cb)
	}
}

// faultSystems builds n instrumented fault-injected systems with
// deterministic per-index seeds.
func faultSystems(t *testing.T, n int) ([]*System, []*obs.Registry) {
	t.Helper()
	systems := make([]*System, n)
	regs := make([]*obs.Registry, n)
	small := disk.DemoSmall()
	for i := range systems {
		sys, err := New(&small,
			WithPolicy(PolicyWaiting),
			WithWaitThreshold(50*time.Millisecond),
			WithFaults(fault.Bursty{RatePerHour: 720, MeanBurst: 4, ClusterSectors: 1024}),
			WithFaultSeed(int64(i+1)),
			WithAutoRepair(),
		)
		if err != nil {
			t.Fatal(err)
		}
		regs[i] = obs.New()
		sys.Instrument(regs[i])
		sys.Start()
		systems[i] = sys
	}
	return systems, regs
}

// TestFaultInjectionParallelDeterminism is the determinism proof for the
// fault path: running fault-injected systems over 8 workers (under -race
// in CI) produces, system for system, byte-identical metric snapshots to
// a 1-worker run with the same seeds.
func TestFaultInjectionParallelDeterminism(t *testing.T) {
	const n = 3
	run := func(workers int) [][]byte {
		systems, regs := faultSystems(t, n)
		err := par.ForEach(context.Background(), workers, n, func(ctx context.Context, i int) error {
			return systems[i].RunFor(ctx, 10*time.Minute)
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, n)
		for i, reg := range regs {
			var buf bytes.Buffer
			if err := reg.Snapshot().WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			out[i] = buf.Bytes()
		}
		return out
	}
	want := run(1)
	got := run(8)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("system %d: snapshots diverge between 1 and 8 workers\n1 worker:\n%s\n8 workers:\n%s", i, want[i], got[i])
		}
		if !bytes.Contains(want[i], []byte(`"fault.injected"`)) &&
			!bytes.Contains(want[i], []byte(`"name": "fault.injected"`)) {
			t.Fatalf("system %d snapshot has no fault.injected counter:\n%s", i, want[i])
		}
	}
}

// healthMember builds a System carrying outstanding planted errors and
// registers it directly in the fleet (bypassing Add's tuning, which the
// health machinery does not depend on).
func healthMember(t *testing.T, fl *Fleet, name string, planted int) *System {
	t.Helper()
	small := disk.DemoSmall()
	opts := []Option{WithPolicy(PolicyWaiting), WithWaitThreshold(time.Hour)}
	if planted > 0 {
		opts = append(opts, WithFaults(plantAll{lbas: seq(planted)}))
	}
	sys, err := New(&small, opts...)
	if err != nil {
		t.Fatal(err)
	}
	fl.members[name] = &member{name: name, sys: sys}
	if planted > 0 {
		sys.Faults.Start() // arrival stream only; no scrubber, errors stay latent
	}
	if err := sys.RunFor(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestFleetHealthLifecycle drives the Healthy → Degraded → Failed
// machinery: thresholds, monotone transitions, name-ordered eviction and
// the OnEvict rebuild hand-off.
func TestFleetHealthLifecycle(t *testing.T) {
	fl := NewFleet(testGoal())
	healthMember(t, fl, "a-clean", 0)
	healthMember(t, fl, "b-degraded", 10) // >= 8 outstanding
	healthMember(t, fl, "c-failed", 70)   // >= 64 outstanding
	healthMember(t, fl, "d-failed", 70)

	var handoff []Eviction
	fl.OnEvict(func(ev Eviction) { handoff = append(handoff, ev) })

	evicted := fl.CheckHealth()
	if len(evicted) != 2 || evicted[0].Name != "c-failed" || evicted[1].Name != "d-failed" {
		t.Fatalf("evictions = %+v, want c-failed then d-failed", evicted)
	}
	if len(handoff) != 2 || handoff[0].Name != "c-failed" {
		t.Fatalf("OnEvict saw %+v", handoff)
	}
	if handoff[0].Report.LSEsInjected != 70 {
		t.Fatalf("eviction hand-off report lost the fault stats: %+v", handoff[0].Report)
	}
	if fl.Len() != 2 {
		t.Fatalf("Len after eviction = %d, want 2", fl.Len())
	}
	if got := fl.Health("a-clean"); got != Healthy {
		t.Fatalf("a-clean = %v, want healthy", got)
	}
	if got := fl.Health("b-degraded"); got != Degraded {
		t.Fatalf("b-degraded = %v, want degraded", got)
	}
	// Evicted and never-existed members both report the terminal state.
	if fl.Health("c-failed") != Failed || fl.Health("ghost") != Failed {
		t.Fatal("absent members must report failed")
	}

	// Idempotent: a second pass with unchanged stats changes nothing.
	if again := fl.CheckHealth(); len(again) != 0 {
		t.Fatalf("second CheckHealth evicted %+v", again)
	}
	if fl.Health("b-degraded") != Degraded {
		t.Fatal("degraded member flapped")
	}

	// String forms.
	for h, want := range map[Health]string{Healthy: "healthy", Degraded: "degraded", Failed: "failed", Health(9): "Health(9)"} {
		if h.String() != want {
			t.Fatalf("Health(%d).String() = %q, want %q", int(h), h.String(), want)
		}
	}
}

// TestFleetHealthPolicyAndRetryExhaustion covers the custom-threshold
// path and the second fail trigger: a member whose requests exhaust the
// block layer's retry budget fails even with zero outstanding planted
// errors.
func TestFleetHealthPolicyAndRetryExhaustion(t *testing.T) {
	fl := NewFleet(testGoal())
	// Zero fields fall back to defaults.
	fl.SetHealthPolicy(HealthPolicy{DegradeOutstanding: 2})
	if fl.health.FailOutstanding != 64 || fl.health.FailExhausted != 1 {
		t.Fatalf("zero policy fields not defaulted: %+v", fl.health)
	}
	healthMember(t, fl, "tight", 3) // over the custom degrade floor of 2
	if fl.CheckHealth(); fl.Health("tight") != Degraded {
		t.Fatalf("custom threshold ignored: %v", fl.Health("tight"))
	}

	// A hard error on a clean member: pre-seed an LSE the zero retry
	// policy cannot recover and verify over it.
	sys := healthMember(t, fl, "hard-errors", 0)
	sys.Disk.InjectLSE(500)
	sys.Queue.Submit(&blockdev.Request{
		Op: disk.OpVerify, LBA: 0, Sectors: 1024,
		Class: blockdev.ClassBE, Origin: blockdev.Foreground,
	})
	if err := sys.RunFor(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	if got := sys.Queue.Stats().RetryExhausted; got != 1 {
		t.Fatalf("RetryExhausted = %d, want 1", got)
	}
	evicted := fl.CheckHealth()
	if len(evicted) != 1 || evicted[0].Name != "hard-errors" {
		t.Fatalf("evictions = %+v, want hard-errors", evicted)
	}
	if fl.Health("hard-errors") != Failed {
		t.Fatal("retry-exhausted member not failed")
	}
}
