package core

import (
	"errors"
	"time"

	"repro/internal/blockdev"
	"repro/internal/disk"
	"repro/internal/optimize"
	"repro/internal/trace"
)

// Recorder captures a System's live foreground request stream as trace
// records, closing the paper's adaptive loop: "The simulations can be
// repeated to adapt the parameter values if the workload changes
// substantially" (Section V-D). Attach one, let it observe, then Retune.
type Recorder struct {
	sys     *System
	records []trace.Record
	started time.Duration
	window  time.Duration
}

// AttachRecorder subscribes a Recorder to the system's queue. window
// bounds the retained history (older records are discarded); zero keeps
// everything.
func (sys *System) AttachRecorder(window time.Duration) *Recorder {
	rec := &Recorder{sys: sys, started: sys.Sim.Now(), window: window}
	sys.Queue.SubscribeSubmit(func(r *blockdev.Request) {
		if r.Origin != blockdev.Foreground {
			return
		}
		rec.records = append(rec.records, trace.Record{
			Arrival: sys.Sim.Now(),
			LBA:     r.LBA,
			Sectors: r.Sectors,
			Write:   r.Op == disk.OpWrite,
		})
		rec.trim()
	})
	return rec
}

// trim drops records older than the window.
func (rec *Recorder) trim() {
	if rec.window <= 0 || len(rec.records) == 0 {
		return
	}
	cutoff := rec.sys.Sim.Now() - rec.window
	drop := 0
	for drop < len(rec.records) && rec.records[drop].Arrival < cutoff {
		drop++
	}
	if drop > 0 && drop > len(rec.records)/4 {
		rec.records = append(rec.records[:0], rec.records[drop:]...)
	}
}

// Len returns the number of retained records.
func (rec *Recorder) Len() int { return len(rec.records) }

// Records returns a copy of the retained records, rebased to start at
// zero (a ready-made tuning profile).
func (rec *Recorder) Records() []trace.Record {
	if len(rec.records) == 0 {
		return nil
	}
	base := rec.records[0].Arrival
	out := make([]trace.Record, len(rec.records))
	for i, r := range rec.records {
		r.Arrival -= base
		out[i] = r
	}
	return out
}

// Retune re-runs the optimizer on the recorded history and applies the
// new request size and threshold to the running system. It returns the
// new choice. Only Waiting-policy systems can be retuned.
func (rec *Recorder) Retune(goal optimize.Goal) (optimize.Choice, error) {
	if rec.sys.cfg.Policy != PolicyWaiting {
		return optimize.Choice{}, errors.New("core: only waiting-policy systems retune")
	}
	records := rec.Records()
	if len(records) < 64 {
		return optimize.Choice{}, errors.New("core: not enough recorded history to retune")
	}
	if rec.sys.Disk == nil {
		return optimize.Choice{}, errors.New("core: retuning needs the rotational idle-time model; " + rec.sys.Device.ModelName() + " has none")
	}
	choice, err := AutoTune(records, rec.sys.Disk.Model(), goal)
	if err != nil {
		return optimize.Choice{}, err
	}
	rec.sys.ApplyTuning(choice)
	return choice, nil
}

// ApplyTuning updates a running Waiting-policy system's scrub request
// size and wait threshold in place. The in-flight request and the current
// algorithm pass position are unaffected.
func (sys *System) ApplyTuning(choice optimize.Choice) {
	sys.cfg.ReqBytes = choice.ReqSectors * disk.SectorSize
	sys.cfg.WaitThreshold = choice.Threshold
	sys.Scrubber.SetSize(choice.ReqSectors)
	if w, ok := sys.policy.(interface{ SetThreshold(time.Duration) }); ok {
		w.SetThreshold(choice.Threshold)
	}
}
