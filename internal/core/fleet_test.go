package core

import (
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/optimize"
	"repro/internal/trace"
)

func testGoal() optimize.Goal {
	return optimize.Goal{MeanSlowdown: 2 * time.Millisecond, MaxSlowdown: 50 * time.Millisecond}
}

func TestFleetLifecycle(t *testing.T) {
	fl := NewFleet(testGoal())
	m := disk.HitachiUltrastar15K450()
	for _, name := range []string{"HPc3t3d0", "HPc6t5d0"} {
		spec, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		profile := spec.Generate(3, time.Hour)
		choice, err := fl.Add(name, m, profile.Records, Staggered)
		if err != nil {
			t.Fatal(err)
		}
		if choice.ReqSectors <= 0 || choice.Threshold <= 0 {
			t.Fatalf("%s: bad choice %+v", name, choice)
		}
	}
	if fl.Len() != 2 {
		t.Fatalf("Len = %d", fl.Len())
	}
	if fl.System("HPc3t3d0") == nil {
		t.Fatal("member System missing")
	}
	if fl.System("ghost") != nil {
		t.Fatal("phantom member")
	}
	fl.Start()
	if err := fl.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	reports, total := fl.Reports()
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].Name >= reports[1].Name {
		t.Fatal("reports not sorted")
	}
	if total <= 0 {
		t.Fatal("fleet scrubbed nothing on idle disks")
	}
	for _, r := range reports {
		if r.Report.ScrubMBps <= 0 || r.PassHours <= 0 {
			t.Fatalf("%s: empty report %+v", r.Name, r.Report)
		}
	}
}

func TestFleetDuplicateRejected(t *testing.T) {
	fl := NewFleet(testGoal())
	spec, _ := trace.ByName("HPc3t3d0")
	profile := spec.Generate(4, time.Hour)
	m := disk.HitachiUltrastar15K450()
	if _, err := fl.Add("a", m, profile.Records, Sequential); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Add("a", m, profile.Records, Sequential); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestFleetInfeasibleGoal(t *testing.T) {
	fl := NewFleet(optimize.Goal{MeanSlowdown: time.Millisecond, MaxSlowdown: time.Microsecond})
	spec, _ := trace.ByName("HPc3t3d0")
	profile := spec.Generate(5, 30*time.Minute)
	if _, err := fl.Add("a", disk.HitachiUltrastar15K450(), profile.Records, Staggered); err == nil {
		t.Fatal("infeasible goal accepted")
	}
	if fl.Len() != 0 {
		t.Fatal("failed member registered")
	}
}

func TestFleetHotSwap(t *testing.T) {
	fl := NewFleet(testGoal())
	spec, _ := trace.ByName("HPc3t3d0")
	profile := spec.Generate(6, time.Hour)
	m := disk.HitachiUltrastar15K450()
	if _, err := fl.Add("a", m, profile.Records, Staggered); err != nil {
		t.Fatal(err)
	}
	if err := fl.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if fl.Len() != 0 {
		t.Fatal("member not removed")
	}
	if err := fl.Remove("a"); err == nil {
		t.Fatal("double remove accepted")
	}
	// Re-adding under the same name works (hot swap).
	if _, err := fl.Add("a", m, profile.Records, Sequential); err != nil {
		t.Fatal(err)
	}
	if fl.Len() != 1 {
		t.Fatal("re-add failed")
	}
}
