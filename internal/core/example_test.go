package core_test

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/optimize"
	"repro/internal/trace"
)

// ExampleNew runs an untuned Waiting-policy scrubber on an idle disk: the
// zero-configuration path. The simulation is deterministic, so the output
// is exact.
func ExampleNew() {
	sys, err := core.New(nil,
		core.WithPolicy(core.PolicyWaiting),
		core.WithWaitThreshold(100*time.Millisecond),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	sys.Start()
	if err := sys.RunFor(context.Background(), time.Minute); err != nil {
		fmt.Println(err)
		return
	}
	rep := sys.Report()
	fmt.Printf("policy=%s algorithm=%s scrubbing=%v\n",
		rep.Policy, rep.Algorithm, rep.ScrubMBps > 0)
	// Output:
	// policy=waiting algorithm=staggered scrubbing=true
}

// ExampleAutoTune derives the Section V-D parameters — scrub request size
// and wait threshold — from a workload profile and a slowdown budget.
func ExampleAutoTune() {
	spec, _ := trace.ByName("HPc3t3d0")
	profile := spec.Generate(5, 20*time.Minute)
	choice, err := core.AutoTune(profile.Records, disk.HitachiUltrastar15K450(), optimize.Goal{
		MeanSlowdown: 2 * time.Millisecond,
		MaxSlowdown:  50 * time.Millisecond,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("meets goal: %v, request >= 64KB: %v, threshold > 0: %v\n",
		choice.Result.MeanSlowdown() <= 2*time.Millisecond,
		choice.ReqSectors >= 128,
		choice.Threshold > 0)
	// Output:
	// meets goal: true, request >= 64KB: true, threshold > 0: true
}

// ExampleSystem_Report shows the detect-and-correct loop: inject latent
// sector errors, scrub with AutoRepair, read the campaign report.
func ExampleSystem_Report() {
	small := disk.FujitsuMAX3073RC()
	small.CapacityBytes = 128 << 20
	small.Cylinders = 150
	sys, err := core.New(&small,
		core.WithPolicy(core.PolicyCFQIdle),
		core.WithAlgorithm(core.Sequential),
		core.WithAutoRepair(),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	sys.Disk.InjectLSE(12345)
	sys.Start()
	if err := sys.RunFor(context.Background(), 20*time.Second); err != nil {
		fmt.Println(err)
		return
	}
	rep := sys.Report()
	fmt.Printf("found=%d repaired=%d latent=%d\n",
		rep.LSEsFound, rep.LSEsRepaired, sys.Disk.LSECount())
	// Output:
	// found=1 repaired=1 latent=0
}
