package core

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// instrumentedFleet builds a 2-member fleet with per-member registries,
// ready to run.
func instrumentedFleet(t *testing.T) *Fleet {
	t.Helper()
	fl := NewFleet(testGoal())
	for _, sp := range testSpecs(t, 2) {
		if _, err := fl.Add(sp.Name, sp.Model, sp.Profile, sp.Alg); err != nil {
			t.Fatal(err)
		}
	}
	fl.InstrumentAll()
	fl.Start()
	return fl
}

// memberSnapshots renders each member's registry to canonical JSON.
func memberSnapshots(t *testing.T, fl *Fleet) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, name := range fl.names() {
		reg := fl.Registry(name)
		if reg == nil {
			t.Fatalf("member %q not instrumented", name)
		}
		var buf bytes.Buffer
		if err := reg.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		out[name] = buf.Bytes()
	}
	return out
}

// TestFleetInstrumentedParallelDeterminism is the race/determinism proof
// for per-member registries: running an instrumented fleet over 8
// workers (under -race in CI) produces, member for member, byte-identical
// metric snapshots to a 1-worker run. Registries are strictly
// per-member, so the parallel run shares no instrument state.
func TestFleetInstrumentedParallelDeterminism(t *testing.T) {
	serial := instrumentedFleet(t)
	if err := serial.RunAllFor(context.Background(), 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	parallel := instrumentedFleet(t)
	if err := parallel.RunAllFor(context.Background(), 8, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	want := memberSnapshots(t, serial)
	got := memberSnapshots(t, parallel)
	if len(got) != len(want) {
		t.Fatalf("member count: %d vs %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("parallel fleet missing member %q", name)
		}
		if !bytes.Equal(g, w) {
			t.Errorf("member %q: snapshots diverge between 1 and 8 workers\n1 worker:\n%s\n8 workers:\n%s", name, w, g)
		}
	}

	// The run must actually have produced metrics, or the byte-compare
	// proves nothing.
	for name, g := range got {
		if !bytes.Contains(g, []byte(`"name": "scrub.requests"`)) {
			t.Fatalf("member %q snapshot has no scrub.requests counter:\n%s", name, g)
		}
	}
}

// TestFleetRegistriesIndependent checks that members do not share
// instruments: a counter touched through one member's registry must not
// appear in a sibling's snapshot.
func TestFleetRegistriesIndependent(t *testing.T) {
	fl := instrumentedFleet(t)
	names := fl.names()
	if len(names) < 2 {
		t.Fatal("need two members")
	}
	a, b := fl.Registry(names[0]), fl.Registry(names[1])
	if a == nil || b == nil || a == b {
		t.Fatalf("registries not distinct: %p vs %p", a, b)
	}
	a.Counter("test.only.in.a").Inc()
	var buf bytes.Buffer
	if err := b.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("test.only.in.a")) {
		t.Fatal("counter created in member A's registry leaked into member B's snapshot")
	}

	// InstrumentAll is idempotent: calling again must keep the existing
	// registries rather than re-wiring new ones.
	fl.InstrumentAll()
	if fl.Registry(names[0]) != a {
		t.Fatal("InstrumentAll replaced an existing registry")
	}
}
