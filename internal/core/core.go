// Package core is the public façade of the practical-scrubbing library: it
// wires a drive model, block layer, I/O scheduler, scrubbing algorithm and
// scrub scheduling policy into one System, and implements the paper's
// bottom-line recipe (Section V-D): record a short trace of the workload,
// auto-tune the two parameters of the Waiting policy — the scrub request
// size and the wait threshold — for an administrator-given slowdown goal,
// then scrub with those parameters.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/idlesim"
	"repro/internal/iosched"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/par"
	"repro/internal/schedpolicy"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// PolicyKind selects how scrub requests are scheduled.
type PolicyKind int

const (
	// PolicyCFQIdle issues back-to-back requests in CFQ's Idle class: the
	// practice the paper improves upon.
	PolicyCFQIdle PolicyKind = iota + 1
	// PolicyFixedDelay issues requests every Delay, the conventional
	// fixed-rate scrubber.
	PolicyFixedDelay
	// PolicyWaiting fires after WaitThreshold of device idleness: the
	// paper's winning policy.
	PolicyWaiting
	// PolicyAR fires when an AR(p) prediction of the current idle
	// interval exceeds ARThreshold.
	PolicyAR
	// PolicyARWaiting combines the two.
	PolicyARWaiting
)

// String implements fmt.Stringer.
func (p PolicyKind) String() string {
	switch p {
	case PolicyCFQIdle:
		return "cfq-idle"
	case PolicyFixedDelay:
		return "fixed-delay"
	case PolicyWaiting:
		return "waiting"
	case PolicyAR:
		return "ar"
	case PolicyARWaiting:
		return "ar+waiting"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// AlgorithmKind selects the scrub order.
type AlgorithmKind int

const (
	// Sequential scans in ascending LBN order.
	Sequential AlgorithmKind = iota + 1
	// Staggered probes Regions regions round-robin (lower MLET; same
	// throughput for >= 128 regions per the paper's Section IV).
	Staggered
)

// Config assembles a System.
//
// Deprecated: Config remains only as the construction shim behind
// NewFromConfig. New code should build systems with New and functional
// Options, which cover every field here.
type Config struct {
	// Model is the drive model (default: Hitachi Ultrastar 15K450).
	Model *disk.Model
	// Device, when non-nil, selects any device model — rotational or
	// solid-state — and takes precedence over Model (see WithDevice).
	Device disk.DeviceModel
	// Sched names the I/O scheduler: "cfq" (default), "deadline",
	// "noop", "bsa" or "bsa-repair" (see WithIOSched).
	Sched string
	// Algorithm selects scrub order (default Staggered).
	Algorithm AlgorithmKind
	// Regions for staggered scrubbing (default 128).
	Regions int
	// Mode selects kernel vs user level issuing (default kernel).
	Mode scrub.Mode
	// Policy selects scheduling (default PolicyWaiting).
	Policy PolicyKind
	// ReqBytes is the scrub request size (default 64 KB; AutoTune
	// overrides it).
	ReqBytes int64
	// Delay for PolicyFixedDelay.
	Delay time.Duration
	// WaitThreshold for PolicyWaiting / PolicyARWaiting.
	WaitThreshold time.Duration
	// ARThreshold for PolicyAR / PolicyARWaiting.
	ARThreshold time.Duration
	// AutoRepair rewrites sectors whose verify detected a latent error,
	// completing the detect-and-correct loop.
	AutoRepair bool
	// Escalate enables region re-scrub on detection (see WithEscalation).
	Escalate bool
	// Retry bounds the block layer's reaction to medium errors (see
	// WithRetryPolicy). The zero value means no retries.
	Retry blockdev.RetryPolicy
	// Faults, when non-nil, plants this model's LSE arrival stream on the
	// disk once the system starts (see WithFaults).
	Faults fault.Model
	// FaultSeed seeds the fault stream's RNG (default 1).
	FaultSeed int64
	// Obs, when non-nil, instruments every layer of the stack against this
	// metrics registry (see System.Instrument). Nil leaves the
	// zero-overhead uninstrumented path in place.
	Obs *obs.Registry
}

// System is an assembled simulation stack ready to run scrub campaigns
// against foreground workloads.
type System struct {
	Sim *sim.Simulator //scrublint:transient the simulator is rebuilt and re-armed by Restore
	// Device is the drive the stack runs against — rotational or
	// solid-state. Disk aliases it when (and only when) the device is the
	// rotational model; it is nil for SSD-backed systems, so code that
	// needs seek-model specifics must nil-check it.
	Device   disk.Device //scrublint:transient rebuilt from cfg and per-device state by Restore
	Disk     *disk.Disk
	Queue    *blockdev.Queue
	Scrubber *scrub.Scrubber
	// Faults is the LSE injector, non-nil when the system was built with
	// WithFaults. It starts planting errors when the system starts.
	Faults *fault.Injector

	cfg    Config             //scrublint:transient configuration, supplied to Restore by the caller
	cfq    *iosched.CFQ       // nil unless Sched is CFQ
	sched  blockdev.Scheduler //scrublint:transient wiring rebuilt from cfg by Restore
	policy schedpolicy.Policy
	reg    *obs.Registry //scrublint:transient host-side registry, re-attached by the caller

	// kickEv is the pending Kick timer, kickFn its prebuilt callback —
	// tracked as fields so a snapshot can record and re-arm the timer.
	kickEv *sim.Event
	kickFn func()
}

// New assembles a System over the given drive model (nil means the
// default Hitachi Ultrastar 15K450), configured by functional options.
// The I/O scheduler is always CFQ — the only Linux scheduler with I/O
// priorities, which PolicyCFQIdle requires; the other policies simply
// never leave requests parked in it.
func New(m *disk.Model, opts ...Option) (*System, error) {
	cfg := Config{Model: m}
	for _, opt := range opts {
		opt(&cfg)
	}
	return build(cfg)
}

// NewFromConfig assembles a System from a Config struct.
//
// Deprecated: use New with functional Options. NewFromConfig behaves
// identically — both run the same construction path — and exists only so
// pre-options callers keep compiling.
func NewFromConfig(cfg Config) (*System, error) {
	return build(cfg)
}

func build(cfg Config) (*System, error) {
	var dm disk.DeviceModel = disk.HitachiUltrastar15K450()
	if cfg.Model != nil {
		dm = *cfg.Model
	}
	if cfg.Device != nil {
		dm = cfg.Device
	}
	d, err := dm.NewDevice()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.ReqBytes <= 0 {
		cfg.ReqBytes = 64 << 10
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 128
	}
	if cfg.Algorithm == 0 {
		cfg.Algorithm = Staggered
	}
	if cfg.Policy == 0 {
		cfg.Policy = PolicyWaiting
	}
	if cfg.WaitThreshold <= 0 {
		// Per-model default: the idle-window statistics that make 100 ms
		// right for a disk arm do not transfer to flash (no seek penalty,
		// GC pauses on the scale of milliseconds), so the device model
		// owns the starting threshold.
		cfg.WaitThreshold = dm.DefaultWaitThreshold()
	}
	if cfg.WaitThreshold <= 0 {
		cfg.WaitThreshold = 100 * time.Millisecond
	}
	if cfg.ARThreshold <= 0 {
		cfg.ARThreshold = cfg.WaitThreshold
	}

	s := sim.New()
	var sched blockdev.Scheduler
	var cfq *iosched.CFQ
	switch cfg.Sched {
	case "", "cfq":
		cfq = iosched.NewCFQ()
		sched = cfq
	case "deadline":
		sched = iosched.NewDeadline()
	case "noop":
		sched = iosched.NewNOOP()
	case "bsa":
		sched = iosched.NewBSA()
	case "bsa-repair":
		sched = iosched.NewBSARepair()
	default:
		return nil, fmt.Errorf("core: unknown scheduler %q", cfg.Sched)
	}
	if cfg.Policy == PolicyCFQIdle && cfq == nil {
		return nil, fmt.Errorf("core: policy cfq-idle requires the cfq scheduler, not %q", cfg.Sched)
	}
	q := blockdev.NewQueue(s, d, sched)

	var alg scrub.Algorithm
	switch cfg.Algorithm {
	case Sequential:
		alg, err = scrub.NewSequential(d.Sectors())
	case Staggered:
		alg, err = scrub.NewStaggered(d.Sectors(), cfg.ReqBytes/disk.SectorSize, cfg.Regions)
	default:
		err = fmt.Errorf("core: unknown algorithm %d", cfg.Algorithm)
	}
	if err != nil {
		return nil, err
	}

	class := blockdev.ClassBE
	delay := time.Duration(0)
	switch cfg.Policy {
	case PolicyCFQIdle:
		class = blockdev.ClassIdle
	case PolicyFixedDelay:
		delay = cfg.Delay
	case PolicyWaiting, PolicyAR, PolicyARWaiting:
		// Policy-driven firing, default class.
	default:
		return nil, fmt.Errorf("core: unknown policy %d", cfg.Policy)
	}

	sc, err := scrub.New(s, q, scrub.Config{
		Algorithm:  alg,
		Mode:       cfg.Mode,
		Class:      class,
		Delay:      delay,
		Size:       scrub.FixedSize(cfg.ReqBytes / disk.SectorSize),
		AutoRepair: cfg.AutoRepair,
		Escalate:   cfg.Escalate,
	})
	if err != nil {
		return nil, err
	}
	q.SetRetryPolicy(cfg.Retry)

	sys := &System{Sim: s, Device: d, Queue: q, Scrubber: sc, cfg: cfg, cfq: cfq, sched: sched}
	sys.Disk, _ = d.(*disk.Disk)
	sys.kickFn = sys.kickFire
	if cfg.Faults != nil {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = 1
		}
		sys.Faults = fault.NewInjector(s, d, cfg.Faults, seed)
		sys.Faults.AttachQueue(q)
	}
	switch cfg.Policy {
	case PolicyWaiting:
		sys.policy = &schedpolicy.Waiting{Threshold: cfg.WaitThreshold}
	case PolicyAR:
		sys.policy = &schedpolicy.AR{Threshold: cfg.ARThreshold}
	case PolicyARWaiting:
		sys.policy = &schedpolicy.ARWaiting{
			WaitThreshold: cfg.WaitThreshold,
			ARThreshold:   cfg.ARThreshold,
		}
	}
	if sys.policy != nil {
		sys.policy.Attach(s, q, sc)
	}
	if cfg.Obs != nil {
		sys.Instrument(cfg.Obs)
	}
	return sys, nil
}

// Config returns the (defaulted) configuration the system was built with.
func (sys *System) Config() Config { return sys.cfg }

// Obs returns the registry the system is instrumented against, or nil.
func (sys *System) Obs() *obs.Registry { return sys.reg }

// Instrument attaches every layer of the stack to a metrics registry:
// the disk (service times, cache), the elevator (dispatch decisions),
// the block layer (queue depth, wait times, collisions), the scrubber
// (progress, inflicted service time), the scheduling policy (decision
// counters) and two end-to-end foreground histograms —
// core.fg.slowdown, the queueing delay a foreground request suffered
// (dispatch minus submit, the paper's slowdown measure), and
// core.fg.response_time, submit to completion. A nil reg is a no-op;
// the foreground subscription is only installed when instrumenting, so
// uninstrumented systems pay nothing.
func (sys *System) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	sys.reg = reg
	sys.Device.Instrument(reg)
	if in, ok := sys.sched.(interface{ Instrument(*obs.Registry) }); ok {
		in.Instrument(reg)
	}
	sys.Queue.Instrument(reg)
	sys.Scrubber.Instrument(reg)
	if sys.Faults != nil {
		sys.Faults.Instrument(reg)
	}
	if sys.policy != nil {
		sys.policy.Instrument(reg)
	}
	slowdown := reg.Histogram("core.fg.slowdown")
	response := reg.Histogram("core.fg.response_time")
	sys.Queue.SubscribeComplete(func(r *blockdev.Request) {
		if r.Origin != blockdev.Foreground {
			return
		}
		slowdown.Observe(r.Dispatch - r.Submit)
		response.Observe(r.Done - r.Submit)
	})
}

// Start begins scrubbing — and, when the system carries a fault model,
// the LSE arrival stream. Policy-driven systems wait for their first
// idleness trigger (see Kick for fully idle systems); CFQ-idle and
// fixed-delay systems start issuing immediately.
func (sys *System) Start() {
	if sys.Faults != nil {
		sys.Faults.Start()
	}
	switch sys.cfg.Policy {
	case PolicyWaiting, PolicyAR, PolicyARWaiting:
		sys.Kick()
	default:
		sys.Scrubber.Start()
	}
}

// Kick nudges a completely idle system so idleness-driven policies can
// begin even before any foreground request has been observed: if the
// device is still idle after the wait threshold, scrubbing starts.
func (sys *System) Kick() {
	sys.kickEv = sys.Sim.After(sys.cfg.WaitThreshold, sys.kickFn)
}

func (sys *System) kickFire() {
	sys.kickEv = nil
	if sys.Queue.Idle() && !sys.Scrubber.Firing() {
		sys.Scrubber.Fire()
	}
}

// RunFor advances the simulation by d of virtual time. Cancelling ctx
// stops the event loop promptly (between events) and returns the
// context's error; the simulation is left paused at a consistent point
// and can be resumed by a later RunFor.
func (sys *System) RunFor(ctx context.Context, d time.Duration) error {
	return sys.Sim.RunUntilContext(ctx, sys.Sim.Now()+d)
}

// Report summarizes a campaign.
type Report struct {
	Policy        string
	Algorithm     string
	ScrubMBps     float64
	ScrubbedBytes int64 // exact byte total behind ScrubMBps
	PassProgress  float64
	Passes        int64
	LSEsFound     int64
	LSEsRepaired  int64
	Escalations   int64
	FgRequests    int64
	Collisions    int64
	CollisionRate float64
	// Events is the simulator's fired-event count behind this report:
	// exact, park-invariant (a restored clock keeps its fired total), and
	// the basis of fleet-level events/sec accounting.
	Events int64

	// Fault-injection lifecycle (zero unless built with WithFaults).
	LSEsInjected   int64
	LSEsDetected   int64
	LSEsRemapped   int64
	DetectionRatio float64
	MeanTTD        time.Duration
	// DetectionTime is the exact latency sum behind MeanTTD, carried so
	// fleet-level aggregation stays integer-exact (and therefore
	// independent of merge order and shard count).
	DetectionTime time.Duration
}

// String renders a one-line summary. Systems with fault injection get a
// second clause covering the LSE lifecycle.
func (r Report) String() string {
	s := fmt.Sprintf("%s/%s: %.2f MB/s scrubbed, pass %.1f%% (x%d), %d LSEs, collision rate %.4f",
		r.Policy, r.Algorithm, r.ScrubMBps, 100*r.PassProgress, r.Passes, r.LSEsFound, r.CollisionRate)
	if r.LSEsInjected > 0 {
		s += fmt.Sprintf("; faults: %d injected, %d detected (%.1f%%), %d remapped, mean TTD %v",
			r.LSEsInjected, r.LSEsDetected, 100*r.DetectionRatio, r.LSEsRemapped, r.MeanTTD)
	}
	return s
}

// Report builds a Report at the current virtual time.
func (sys *System) Report() Report {
	st := sys.Scrubber.Stats()
	qs := sys.Queue.Stats()
	fg := qs.Completed[blockdev.Foreground-1]
	r := Report{
		Policy:        sys.cfg.Policy.String(),
		Algorithm:     sys.Scrubber.Algorithm().Name(),
		ScrubMBps:     st.ThroughputMBps(sys.Sim.Now()),
		ScrubbedBytes: st.Bytes(),
		PassProgress:  sys.Scrubber.Algorithm().Progress(),
		Passes:        st.Passes,
		LSEsFound:     st.LSEsFound,
		LSEsRepaired:  st.LSEsRepaired,
		Escalations:   st.Escalations,
		FgRequests:    fg,
		Collisions:    qs.Collisions,
		Events:        int64(sys.Sim.Fired()),
	}
	if fg > 0 {
		r.CollisionRate = float64(qs.Collisions) / float64(fg)
	}
	if sys.Faults != nil {
		fs := sys.Faults.Stats()
		r.LSEsInjected = fs.Injected
		r.LSEsDetected = fs.Detected
		r.LSEsRemapped = fs.Remapped
		r.DetectionRatio = fs.DetectionRatio()
		r.MeanTTD = fs.MeanTimeToDetection()
		r.DetectionTime = fs.DetectionTime
	}
	return r
}

// AutoTune implements the paper's Section V-D recipe: from a short
// workload trace and a slowdown goal, derive the throughput-maximizing
// scrub request size and wait threshold for this drive model.
func AutoTune(records []trace.Record, m disk.Model, goal optimize.Goal) (optimize.Choice, error) {
	return AutoTuneParallel(context.Background(), records, m, goal, 1)
}

// AutoTuneParallel is AutoTune with the request-size sweep spread over
// workers goroutines (0 means GOMAXPROCS). The choice is identical to
// AutoTune's for every worker count. Cancelling ctx abandons the sweep
// and returns the context's error.
func AutoTuneParallel(ctx context.Context, records []trace.Record, m disk.Model, goal optimize.Goal, workers int) (optimize.Choice, error) {
	if len(records) < 2 {
		return optimize.Choice{}, fmt.Errorf("core: need a trace with >= 2 records")
	}
	arrivals := make([]time.Duration, len(records))
	for i, r := range records {
		arrivals[i] = r.Arrival
	}
	gaps := stats.IdleGaps(arrivals)
	in := idlesim.Input{
		Intervals: gaps,
		Requests:  int64(len(records)),
		Span:      arrivals[len(arrivals)-1] - arrivals[0],
	}
	return optimize.Tuner{Workers: par.Workers(workers)}.Tune(ctx, in, goal, idlesim.ScrubService(m))
}

// AutoTuneSource is AutoTune over a streaming trace.Source: the records
// are reduced to their idle-gap sequence in one pass, so a multi-GB
// on-disk trace tunes in the memory of its gap list rather than its
// record count.
func AutoTuneSource(src trace.Source, m disk.Model, goal optimize.Goal) (optimize.Choice, error) {
	return AutoTuneSourceParallel(context.Background(), src, m, goal, 1)
}

// AutoTuneSourceParallel is AutoTuneSource with the request-size sweep
// spread over workers goroutines (0 means GOMAXPROCS).
func AutoTuneSourceParallel(ctx context.Context, src trace.Source, m disk.Model, goal optimize.Goal, workers int) (optimize.Choice, error) {
	in, err := idlesim.InputFromSource(src)
	if err != nil {
		return optimize.Choice{}, err
	}
	return optimize.Tuner{Workers: par.Workers(workers)}.Tune(ctx, in, goal, idlesim.ScrubService(m))
}

// NewTuned builds a Waiting-policy System with AutoTuned parameters.
// Extra options are applied on top of the tuned configuration (e.g.
// WithFaults, WithObs); options that override the tuned policy, size or
// threshold win, matching the options contract.
func NewTuned(records []trace.Record, m disk.Model, goal optimize.Goal, alg AlgorithmKind, opts ...Option) (*System, optimize.Choice, error) {
	choice, err := AutoTune(records, m, goal)
	if err != nil {
		return nil, optimize.Choice{}, err
	}
	base := []Option{
		WithAlgorithm(alg),
		WithPolicy(PolicyWaiting),
		WithRequestBytes(choice.ReqSectors * disk.SectorSize),
		WithWaitThreshold(choice.Threshold),
	}
	sys, err := New(&m, append(base, opts...)...)
	if err != nil {
		return nil, optimize.Choice{}, err
	}
	return sys, choice, nil
}

// NewTunedSource is NewTuned over a streaming trace.Source: tune the
// Waiting policy from the source's idle gaps, then build the System.
func NewTunedSource(src trace.Source, m disk.Model, goal optimize.Goal, alg AlgorithmKind, opts ...Option) (*System, optimize.Choice, error) {
	choice, err := AutoTuneSource(src, m, goal)
	if err != nil {
		return nil, optimize.Choice{}, err
	}
	base := []Option{
		WithAlgorithm(alg),
		WithPolicy(PolicyWaiting),
		WithRequestBytes(choice.ReqSectors * disk.SectorSize),
		WithWaitThreshold(choice.Threshold),
	}
	sys, err := New(&m, append(base, opts...)...)
	if err != nil {
		return nil, optimize.Choice{}, err
	}
	return sys, choice, nil
}
