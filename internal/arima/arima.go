// Package arima implements autoregressive AR(p) time-series models, the
// statistical tool behind the paper's Autoregression scrub-scheduling
// policy (Section V-B1). Models are fitted with the Yule-Walker equations
// solved by Levinson-Durbin recursion, and the order p is selected with
// Akaike's Information Criterion exactly as the paper describes. The paper
// notes that richer models (ACD, ARIMA) were too slow to fit at I/O rates;
// AR(p) via Levinson-Durbin is O(n + p^2) and is what we provide.
package arima

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// ErrTooShort is returned when the sample is too small to fit the
// requested order.
var ErrTooShort = errors.New("arima: series too short for requested order")

// Model is a fitted AR(p) model:
//
//	X_t = mu + sum_i a_i (X_{t-i} - mu) + eps_t
type Model struct {
	// Coeffs are the autoregressive coefficients a_1..a_p.
	Coeffs []float64
	// Mean is the process mean mu.
	Mean float64
	// NoiseVar is the innovation (white noise) variance.
	NoiseVar float64
	// AIC is Akaike's Information Criterion for this fit.
	AIC float64
	// N is the number of observations the model was fitted on.
	N int
}

// Order returns p, the autoregressive order.
func (m *Model) Order() int { return len(m.Coeffs) }

// Predict returns the one-step-ahead forecast given the most recent
// observations, ordered oldest first (history[len-1] is X_{t-1}). When
// fewer than p observations are supplied the missing lags are taken at the
// process mean.
func (m *Model) Predict(history []float64) float64 {
	pred := m.Mean
	p := len(m.Coeffs)
	for i := 1; i <= p; i++ {
		idx := len(history) - i
		if idx < 0 {
			continue // X_{t-i} - mu treated as 0
		}
		pred += m.Coeffs[i-1] * (history[idx] - m.Mean)
	}
	return pred
}

// String renders the model in a compact human-readable form.
func (m *Model) String() string {
	return fmt.Sprintf("AR(%d){mu=%.4g sigma2=%.4g aic=%.4g}", m.Order(), m.Mean, m.NoiseVar, m.AIC)
}

// Fit fits an AR(p) model of the exact order p via Yule-Walker /
// Levinson-Durbin.
func Fit(xs []float64, p int) (*Model, error) {
	if p < 0 {
		return nil, fmt.Errorf("arima: negative order %d", p)
	}
	if len(xs) < p+2 {
		return nil, ErrTooShort
	}
	cov := stats.Autocovariance(xs, p)
	coeffs, noise, err := levinsonDurbin(cov, p)
	if err != nil {
		return nil, err
	}
	n := float64(len(xs))
	m := &Model{
		Coeffs:   coeffs,
		Mean:     stats.Mean(xs),
		NoiseVar: noise,
		N:        len(xs),
	}
	m.AIC = aic(noise, n, p)
	return m, nil
}

// FitAIC fits AR(p) models for p in [1, maxOrder] and returns the one with
// the lowest AIC, as the paper's policy does ("We estimate the order p
// using Akaike's Information Criterion").
func FitAIC(xs []float64, maxOrder int) (*Model, error) {
	if maxOrder < 1 {
		return nil, fmt.Errorf("arima: maxOrder %d < 1", maxOrder)
	}
	if len(xs) < 3 {
		return nil, ErrTooShort
	}
	if maxOrder > len(xs)-2 {
		maxOrder = len(xs) - 2
	}
	// Levinson-Durbin computes all orders up to maxOrder in one recursion;
	// exploit that instead of refitting per order.
	cov := stats.Autocovariance(xs, maxOrder)
	allCoeffs, allNoise, err := levinsonDurbinAll(cov, maxOrder)
	if err != nil {
		return nil, err
	}
	n := float64(len(xs))
	bestP := 1
	bestAIC := math.Inf(1)
	for p := 1; p <= maxOrder; p++ {
		a := aic(allNoise[p], n, p)
		if a < bestAIC {
			bestAIC = a
			bestP = p
		}
	}
	return &Model{
		Coeffs:   allCoeffs[bestP],
		Mean:     stats.Mean(xs),
		NoiseVar: allNoise[bestP],
		AIC:      bestAIC,
		N:        len(xs),
	}, nil
}

func aic(noiseVar, n float64, p int) float64 {
	if noiseVar <= 0 {
		noiseVar = 1e-300
	}
	return n*math.Log(noiseVar) + 2*float64(p+1)
}

// levinsonDurbin solves the Yule-Walker equations for a single order.
func levinsonDurbin(cov []float64, p int) ([]float64, float64, error) {
	coeffs, noise, err := levinsonDurbinAll(cov, p)
	if err != nil {
		return nil, 0, err
	}
	return coeffs[p], noise[p], nil
}

// levinsonDurbinAll runs the Levinson-Durbin recursion returning the
// coefficient vector and innovation variance for every order 0..p.
func levinsonDurbinAll(cov []float64, p int) ([][]float64, []float64, error) {
	if len(cov) < p+1 {
		return nil, nil, fmt.Errorf("arima: need %d autocovariances, have %d", p+1, len(cov))
	}
	if cov[0] <= 0 {
		return nil, nil, errors.New("arima: zero-variance series")
	}
	coeffs := make([][]float64, p+1)
	noise := make([]float64, p+1)
	coeffs[0] = nil
	noise[0] = cov[0]
	prev := make([]float64, 0, p)
	for k := 1; k <= p; k++ {
		acc := cov[k]
		for j := 1; j < k; j++ {
			acc -= prev[j-1] * cov[k-j]
		}
		if noise[k-1] == 0 {
			// Perfectly predictable already; higher orders add nothing.
			coeffs[k] = append([]float64(nil), prev...)
			coeffs[k] = append(coeffs[k], 0)
			noise[k] = 0
			prev = coeffs[k]
			continue
		}
		reflection := acc / noise[k-1]
		cur := make([]float64, k)
		for j := 1; j < k; j++ {
			cur[j-1] = prev[j-1] - reflection*prev[k-1-j]
		}
		cur[k-1] = reflection
		noise[k] = noise[k-1] * (1 - reflection*reflection)
		if noise[k] < 0 {
			noise[k] = 0
		}
		coeffs[k] = cur
		prev = cur
	}
	return coeffs, noise, nil
}

// Predictor is an online one-step-ahead AR predictor with periodic
// refitting, suitable for the streaming setting of the AR scheduling
// policy: observations (inter-arrival durations) arrive one at a time and
// each PredictNext call forecasts the upcoming duration.
type Predictor struct {
	maxOrder int
	refitEvm int // refit every this many observations
	window   int // history window used for fitting

	history []float64
	model   *Model
	sinceFt int
}

// NewPredictor returns a streaming predictor. maxOrder bounds the AR order
// (AIC selects within it), window bounds the history used for fitting, and
// refitEvery controls how often the model is refitted. Values <= 0 get
// sensible defaults (order 8, window 4096, refit every 256).
func NewPredictor(maxOrder, window, refitEvery int) *Predictor {
	if maxOrder <= 0 {
		maxOrder = 8
	}
	if window <= 0 {
		window = 4096
	}
	if refitEvery <= 0 {
		refitEvery = 256
	}
	return &Predictor{maxOrder: maxOrder, refitEvm: refitEvery, window: window}
}

// Observe appends an observation.
func (p *Predictor) Observe(x float64) {
	p.history = append(p.history, x)
	if len(p.history) > 2*p.window {
		// Slide the window, keeping the most recent observations.
		keep := p.history[len(p.history)-p.window:]
		p.history = append(p.history[:0], keep...)
	}
	p.sinceFt++
}

// Ready reports whether enough observations have accumulated to fit.
func (p *Predictor) Ready() bool { return len(p.history) >= p.maxOrder+8 }

// PredictNext forecasts the next observation. Before the predictor is
// Ready it returns the running mean.
func (p *Predictor) PredictNext() float64 {
	if !p.Ready() {
		return stats.Mean(p.history)
	}
	if p.model == nil || p.sinceFt >= p.refitEvm {
		win := p.history
		if len(win) > p.window {
			win = win[len(win)-p.window:]
		}
		if m, err := FitAIC(win, p.maxOrder); err == nil {
			p.model = m
		}
		p.sinceFt = 0
	}
	if p.model == nil {
		return stats.Mean(p.history)
	}
	return p.model.Predict(p.history)
}

// Model returns the current fitted model, or nil before the first fit.
func (p *Predictor) Model() *Model { return p.model }
