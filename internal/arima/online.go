package arima

import (
	"fmt"
	"math"
)

// This file is the incremental counterpart of Predictor: where Predictor
// keeps a window of raw observations and refits with FitAIC (O(window)
// per refit), OnlineAR folds each observation into exponentially-decayed
// autocovariance sums and refits by running Levinson-Durbin directly on
// those sums — O(maxOrder) per observation, O(maxOrder^2) per refit,
// independent of how much history the device has accumulated. That is
// what lets a daemon keep tens of thousands of per-device AR fits fresh
// without ever re-reading a history buffer. Observe and Predict are
// allocation-free; Refit reuses preallocated recursion buffers.

// OnlineAR is a streaming AR(p) fitter over decayed autocovariances.
// It is not safe for concurrent use; the daemon serializes access per
// device shard.
type OnlineAR struct {
	maxOrder int
	decay    float64

	ring []float64 // last maxOrder observations; ring[pos-1] is newest
	pos  int       // next write index
	n    int64     // observations seen

	sumW  float64   // decayed weight mass
	sumX  float64   // decayed sum of x
	cross []float64 // cross[k] = decayed sum of x_t * x_{t-k}, k = 0..maxOrder
	wk    []float64 // decayed weight mass contributing to cross[k]

	// Fitted model (valid when fitted). coeffs aliases coeffsBuf.
	fitted bool
	coeffs []float64
	mean   float64
	noise  float64
	order  int //scrublint:transient rederived from len(Coeffs) by RestoreOnlineAR

	// Preallocated recursion scratch.
	cov       []float64 //scrublint:transient Levinson-Durbin scratch, recomputed by the next fit
	prev, cur []float64 //scrublint:transient Levinson-Durbin scratch, recomputed by the next fit
	coeffsBuf []float64
}

// minEffectiveWeight is the decayed sample mass a lag must have
// accumulated before it participates in a fit.
const minEffectiveWeight = 4.0

// NewOnlineAR returns a streaming fitter. maxOrder bounds the AIC-selected
// AR order (<= 0 selects 8; capped at 64) and decay is the per-observation
// exponential forgetting factor in (0, 1] (<= 0 selects 0.999; 1 never
// forgets).
func NewOnlineAR(maxOrder int, decay float64) *OnlineAR {
	if maxOrder <= 0 {
		maxOrder = 8
	}
	if maxOrder > 64 {
		maxOrder = 64
	}
	if decay <= 0 {
		decay = 0.999
	}
	if decay > 1 {
		decay = 1
	}
	return &OnlineAR{
		maxOrder:  maxOrder,
		decay:     decay,
		ring:      make([]float64, maxOrder),
		cross:     make([]float64, maxOrder+1),
		wk:        make([]float64, maxOrder+1),
		cov:       make([]float64, maxOrder+1),
		prev:      make([]float64, maxOrder),
		cur:       make([]float64, maxOrder),
		coeffsBuf: make([]float64, maxOrder),
	}
}

// MaxOrder returns the configured order bound.
func (o *OnlineAR) MaxOrder() int { return o.maxOrder }

// Count returns the number of observations folded in.
func (o *OnlineAR) Count() int64 { return o.n }

// Observe folds one observation into the decayed sums.
//
//scrub:hotpath
func (o *OnlineAR) Observe(x float64) {
	d := o.decay
	o.sumW = o.sumW*d + 1
	o.sumX = o.sumX*d + x
	lags := o.maxOrder
	if o.n < int64(lags) {
		lags = int(o.n)
	}
	for k := 0; k <= o.maxOrder; k++ {
		o.cross[k] *= d
		o.wk[k] *= d
	}
	o.cross[0] += x * x
	o.wk[0]++
	for k := 1; k <= lags; k++ {
		// x_{t-k} sits k slots behind the write position in the ring.
		i := o.pos - k
		if i < 0 {
			i += o.maxOrder
		}
		o.cross[k] += x * o.ring[i]
		o.wk[k]++
	}
	o.ring[o.pos] = x
	o.pos++
	if o.pos == o.maxOrder {
		o.pos = 0
	}
	o.n++
}

// Mean returns the decayed mean estimate (0 before any observation).
func (o *OnlineAR) Mean() float64 {
	if o.sumW == 0 {
		return 0
	}
	return o.sumX / o.sumW
}

// Ready reports whether a model has been fitted.
func (o *OnlineAR) Ready() bool { return o.fitted }

// Order returns the fitted order (0 before the first successful Refit).
func (o *OnlineAR) Order() int {
	if !o.fitted {
		return 0
	}
	return o.order
}

// NoiseVar returns the fitted innovation variance (0 before a fit).
func (o *OnlineAR) NoiseVar() float64 {
	if !o.fitted {
		return 0
	}
	return o.noise
}

// Refit re-estimates the AR coefficients from the current decayed
// autocovariances: Levinson-Durbin over every order the sample supports,
// AIC selection among them, exactly as FitAIC does over a raw series.
// It reports whether a model is available afterwards (a failed refit
// keeps any previous fit). No heap allocation: the recursion runs in
// buffers owned by the fitter.
func (o *OnlineAR) Refit() bool {
	// Orders the decayed sample can support: lag k needs weight mass.
	maxP := 0
	for k := 1; k <= o.maxOrder; k++ {
		if o.wk[k] < minEffectiveWeight {
			break
		}
		maxP = k
	}
	if maxP == 0 || o.sumW <= 0 {
		return o.fitted
	}
	mean := o.sumX / o.sumW
	for k := 0; k <= maxP; k++ {
		o.cov[k] = o.cross[k]/o.wk[k] - mean*mean
	}
	if o.cov[0] <= 0 {
		return o.fitted // zero-variance stream: nothing to fit
	}

	// Levinson-Durbin, keeping the AIC-best order's coefficients.
	nEff := o.wk[0]
	noise := o.cov[0]
	bestAIC := math.Inf(1)
	bestOrder := 0
	prev := o.prev[:0]
	for k := 1; k <= maxP; k++ {
		acc := o.cov[k]
		for j := 1; j < k; j++ {
			acc -= prev[j-1] * o.cov[k-j]
		}
		cur := o.cur[:k]
		if noise == 0 {
			copy(cur, prev)
			cur[k-1] = 0
		} else {
			refl := acc / noise
			for j := 1; j < k; j++ {
				cur[j-1] = prev[j-1] - refl*prev[k-1-j]
			}
			cur[k-1] = refl
			noise *= 1 - refl*refl
			if noise < 0 {
				noise = 0
			}
		}
		if a := aic(noise, nEff, k); a < bestAIC {
			bestAIC = a
			bestOrder = k
			copy(o.coeffsBuf[:k], cur)
			o.mean = mean
			o.noise = noise
		}
		// This order's coefficients become the next order's prefix.
		o.prev, o.cur = o.cur, o.prev
		prev = o.prev[:k]
	}
	if bestOrder == 0 {
		return o.fitted
	}
	o.order = bestOrder
	o.coeffs = o.coeffsBuf[:bestOrder]
	o.fitted = true
	return true
}

// Predict forecasts the next observation from the fitted model and the
// ring of recent observations. Before the first successful Refit it
// returns the decayed mean.
//
//scrub:hotpath
func (o *OnlineAR) Predict() float64 {
	if !o.fitted {
		return o.Mean()
	}
	pred := o.mean
	p := o.order
	if int64(p) > o.n {
		p = int(o.n)
	}
	for i := 1; i <= p; i++ {
		idx := o.pos - i
		if idx < 0 {
			idx += o.maxOrder
		}
		pred += o.coeffs[i-1] * (o.ring[idx] - o.mean)
	}
	return pred
}

// OnlineARState is the serializable snapshot of an OnlineAR.
type OnlineARState struct {
	MaxOrder int
	Decay    float64
	Ring     []float64
	Pos      int
	N        int64
	SumW     float64
	SumX     float64
	Cross    []float64
	Wk       []float64
	Fitted   bool
	Coeffs   []float64
	Mean     float64
	Noise    float64
}

// State copies the fitter into a serializable snapshot.
func (o *OnlineAR) State() OnlineARState {
	st := OnlineARState{
		MaxOrder: o.maxOrder,
		Decay:    o.decay,
		Ring:     append([]float64(nil), o.ring...),
		Pos:      o.pos,
		N:        o.n,
		SumW:     o.sumW,
		SumX:     o.sumX,
		Cross:    append([]float64(nil), o.cross...),
		Wk:       append([]float64(nil), o.wk...),
		Fitted:   o.fitted,
		Mean:     o.mean,
		Noise:    o.noise,
	}
	if o.fitted {
		st.Coeffs = append([]float64(nil), o.coeffs...)
	}
	return st
}

// RestoreOnlineAR rebuilds a fitter from a snapshot, validating shape
// invariants so a corrupted checkpoint is rejected rather than trusted.
func RestoreOnlineAR(st OnlineARState) (*OnlineAR, error) {
	if st.MaxOrder < 1 || st.MaxOrder > 64 {
		return nil, fmt.Errorf("arima: online state order %d outside [1,64]", st.MaxOrder)
	}
	if st.Decay <= 0 || st.Decay > 1 {
		return nil, fmt.Errorf("arima: online state decay %g outside (0,1]", st.Decay)
	}
	if len(st.Ring) != st.MaxOrder ||
		len(st.Cross) != st.MaxOrder+1 || len(st.Wk) != st.MaxOrder+1 {
		return nil, fmt.Errorf("arima: online state shape mismatch for order %d", st.MaxOrder)
	}
	if st.Pos < 0 || st.Pos >= st.MaxOrder || st.N < 0 {
		return nil, fmt.Errorf("arima: online state position %d/count %d invalid", st.Pos, st.N)
	}
	if st.Fitted && (len(st.Coeffs) < 1 || len(st.Coeffs) > st.MaxOrder) {
		return nil, fmt.Errorf("arima: online state fitted with %d coefficients (max %d)", len(st.Coeffs), st.MaxOrder)
	}
	o := NewOnlineAR(st.MaxOrder, st.Decay)
	copy(o.ring, st.Ring)
	o.pos = st.Pos
	o.n = st.N
	o.sumW, o.sumX = st.SumW, st.SumX
	copy(o.cross, st.Cross)
	copy(o.wk, st.Wk)
	o.fitted = st.Fitted
	if st.Fitted {
		o.order = len(st.Coeffs)
		copy(o.coeffsBuf, st.Coeffs)
		o.coeffs = o.coeffsBuf[:o.order]
		o.mean, o.noise = st.Mean, st.Noise
	}
	return o, nil
}
