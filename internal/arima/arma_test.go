package arima

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestFitARIRecoversTrendedAR(t *testing.T) {
	// Random walk with AR(1) increments: ARI(1,1) should recover the
	// increment coefficient.
	rng := rand.New(rand.NewSource(1))
	inc := genAR(rng, []float64{0.6}, 0, 30000)
	xs := make([]float64, len(inc))
	cum := 0.0
	for i, d := range inc {
		cum += d
		xs[i] = cum
	}
	m, err := FitARI(xs, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.D != 1 {
		t.Fatalf("D = %d", m.D)
	}
	if math.Abs(m.AR.Coeffs[0]-0.6) > 0.05 {
		t.Fatalf("increment AR coeff = %v, want ~0.6", m.AR.Coeffs[0])
	}
	// Prediction continues the walk plausibly: next ~ last + predicted
	// increment.
	hist := xs[len(xs)-50:]
	pred := m.Predict(hist)
	lastInc := hist[len(hist)-1] - hist[len(hist)-2]
	want := hist[len(hist)-1] + 0.6*lastInc
	if math.Abs(pred-want) > math.Abs(lastInc)+1 {
		t.Fatalf("prediction %v far from %v", pred, want)
	}
}

func TestFitARIDegenerate(t *testing.T) {
	if _, err := FitARI([]float64{1, 2, 3}, 3, 2); err == nil {
		t.Fatal("d=3 accepted")
	}
	if _, err := FitARI([]float64{1, 2}, 1, 2); err == nil {
		t.Fatal("tiny series accepted")
	}
	// d=0 delegates to plain AR.
	rng := rand.New(rand.NewSource(2))
	xs := genAR(rng, []float64{0.5}, 0, 5000)
	m, err := FitARI(xs, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(xs[:100]); math.IsNaN(got) {
		t.Fatal("NaN prediction")
	}
	// Short-history predictions fall back gracefully.
	m1, _ := FitARI(xs, 1, 2)
	if got := m1.Predict([]float64{5}); got != 5 {
		t.Fatalf("short-history ARI prediction = %v, want last value", got)
	}
	if got := m1.Predict(nil); math.IsNaN(got) {
		t.Fatal("empty-history NaN")
	}
}

func TestFitARMARecoversMA(t *testing.T) {
	// ARMA(1,1) with phi=0.5, theta=0.4.
	rng := rand.New(rand.NewSource(3))
	n := 60000
	xs := make([]float64, n)
	prevE := 0.0
	for i := 1; i < n; i++ {
		e := rng.NormFloat64()
		xs[i] = 0.5*xs[i-1] + e + 0.4*prevE
		prevE = e
	}
	m, err := FitARMA(xs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.5) > 0.08 {
		t.Fatalf("phi = %v, want ~0.5", m.Phi[0])
	}
	if math.Abs(m.Theta[0]-0.4) > 0.08 {
		t.Fatalf("theta = %v, want ~0.4", m.Theta[0])
	}
	if m.NoiseVar < 0.8 || m.NoiseVar > 1.2 {
		t.Fatalf("noise var = %v, want ~1", m.NoiseVar)
	}
	p, q := m.Order()
	if p != 1 || q != 1 {
		t.Fatalf("order = (%d,%d)", p, q)
	}
}

func TestFitARMAErrors(t *testing.T) {
	if _, err := FitARMA([]float64{1, 2, 3}, 1, 1); err == nil {
		t.Fatal("short series accepted")
	}
	if _, err := FitARMA(make([]float64, 100), 0, 0); err == nil {
		t.Fatal("order (0,0) accepted")
	}
	if _, err := FitARMA(make([]float64, 100), -1, 1); err == nil {
		t.Fatal("negative order accepted")
	}
}

func TestARMAPredictWithoutResiduals(t *testing.T) {
	m := &ARMAModel{Phi: []float64{0.5}, Theta: []float64{0.3}, Mean: 10}
	// No residual history: MA term contributes nothing.
	got := m.Predict([]float64{14}, nil)
	if math.Abs(got-12) > 1e-12 {
		t.Fatalf("Predict = %v, want 12", got)
	}
	got = m.Predict([]float64{14}, []float64{2})
	if math.Abs(got-12.6) > 1e-12 {
		t.Fatalf("Predict with residual = %v, want 12.6", got)
	}
}

func TestFitACDRecovers(t *testing.T) {
	// Simulate ACD(1,1) durations and refit.
	rng := rand.New(rand.NewSource(4))
	const (
		omega, alpha, beta = 0.2, 0.15, 0.7
	)
	n := 30000
	xs := make([]float64, n)
	psi := omega / (1 - alpha - beta)
	for i := 0; i < n; i++ {
		xs[i] = psi * rng.ExpFloat64()
		psi = omega + alpha*xs[i] + beta*psi
	}
	m, err := FitACD(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-alpha) > 0.08 {
		t.Fatalf("alpha = %v, want ~%v", m.Alpha, alpha)
	}
	if math.Abs(m.Beta-beta) > 0.15 {
		t.Fatalf("beta = %v, want ~%v", m.Beta, beta)
	}
	if m.Iterations == 0 {
		t.Fatal("no optimizer work recorded")
	}
	// Filter produces positive conditional means tracking the data scale.
	psis := m.Filter(xs[:1000])
	for i, p := range psis {
		if p <= 0 {
			t.Fatalf("psi[%d] = %v", i, p)
		}
	}
	if m.Predict(1, 1) <= 0 {
		t.Fatal("non-positive prediction")
	}
}

func TestFitACDErrors(t *testing.T) {
	if _, err := FitACD([]float64{1, 2}); err == nil {
		t.Fatal("short series accepted")
	}
	neg := make([]float64, 100)
	neg[50] = -1
	if _, err := FitACD(neg); err == nil {
		t.Fatal("negative durations accepted")
	}
	if _, err := FitACD(make([]float64, 100)); err == nil {
		t.Fatal("all-zero durations accepted")
	}
}

// TestFitSpeedClaim reproduces the paper's modelling-choice argument:
// fitting AR(p) by Levinson-Durbin must be far cheaper than ARMA
// (Hannan-Rissanen) and ACD (MLE) on the same data.
func TestFitSpeedClaim(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 100000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = 0.5*xs[i-1] + math.Abs(rng.NormFloat64())
	}
	timeIt := func(fit func()) time.Duration {
		start := time.Now()
		fit()
		return time.Since(start)
	}
	arTime := timeIt(func() {
		if _, err := FitAIC(xs, 8); err != nil {
			t.Fatal(err)
		}
	})
	armaTime := timeIt(func() {
		if _, err := FitARMA(xs, 2, 2); err != nil {
			t.Fatal(err)
		}
	})
	acdTime := timeIt(func() {
		if _, err := FitACD(xs); err != nil {
			t.Fatal(err)
		}
	})
	// The paper's claim, conservatively: AR at least 2x cheaper than both.
	if arTime*2 > armaTime {
		t.Fatalf("AR (%v) not clearly cheaper than ARMA (%v)", arTime, armaTime)
	}
	if arTime*2 > acdTime {
		t.Fatalf("AR (%v) not clearly cheaper than ACD (%v)", arTime, acdTime)
	}
	t.Logf("fit times on %d samples: AR %v, ARMA %v, ACD %v", n, arTime, armaTime, acdTime)
}
