package arima

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genAR produces n samples of an AR(p) process with the given coefficients,
// mean mu and unit-variance noise.
func genAR(rng *rand.Rand, coeffs []float64, mu float64, n int) []float64 {
	xs := make([]float64, n+200)
	for i := range xs {
		v := mu
		for j, a := range coeffs {
			if i-j-1 >= 0 {
				v += a * (xs[i-j-1] - mu)
			}
		}
		xs[i] = v + rng.NormFloat64()
	}
	return xs[200:] // drop burn-in
}

func TestFitRecoverAR1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := genAR(rng, []float64{0.7}, 10, 50000)
	m, err := Fit(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coeffs[0]-0.7) > 0.02 {
		t.Fatalf("a1 = %v, want ~0.7", m.Coeffs[0])
	}
	if math.Abs(m.Mean-10) > 0.2 {
		t.Fatalf("mu = %v, want ~10", m.Mean)
	}
	if math.Abs(m.NoiseVar-1) > 0.05 {
		t.Fatalf("sigma2 = %v, want ~1", m.NoiseVar)
	}
}

func TestFitRecoverAR2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	want := []float64{0.5, -0.3}
	xs := genAR(rng, want, 0, 80000)
	m, err := Fit(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(m.Coeffs[i]-want[i]) > 0.02 {
			t.Fatalf("coeffs = %v, want ~%v", m.Coeffs, want)
		}
	}
}

func TestFitAICSelectsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := genAR(rng, []float64{0.5, -0.3}, 0, 50000)
	m, err := FitAIC(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	// AIC should pick a low order close to the true 2, never the max.
	if m.Order() < 2 || m.Order() > 5 {
		t.Fatalf("selected order %d, want 2..5", m.Order())
	}
	if math.Abs(m.Coeffs[0]-0.5) > 0.03 || math.Abs(m.Coeffs[1]+0.3) > 0.03 {
		t.Fatalf("coeffs = %v", m.Coeffs)
	}
}

func TestFitAICWhiteNoisePrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()
	}
	m, err := FitAIC(xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction for white noise should stay near the mean regardless of
	// history.
	pred := m.Predict([]float64{5.3, 4.9, 5.1})
	if math.Abs(pred-5) > 0.2 {
		t.Fatalf("prediction = %v, want ~5", pred)
	}
}

func TestPredictShortHistory(t *testing.T) {
	m := &Model{Coeffs: []float64{0.5, 0.25}, Mean: 2}
	// One observation only: second lag falls back to the mean.
	got := m.Predict([]float64{4})
	want := 2 + 0.5*(4-2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Predict = %v, want %v", got, want)
	}
	// Empty history: the mean.
	if got := m.Predict(nil); got != 2 {
		t.Fatalf("Predict(nil) = %v, want 2", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2}, 3); err == nil {
		t.Fatal("want error for too-short series")
	}
	if _, err := Fit([]float64{1, 2, 3}, -1); err == nil {
		t.Fatal("want error for negative order")
	}
	if _, err := FitAIC([]float64{1}, 4); err == nil {
		t.Fatal("want error for too-short series")
	}
	if _, err := FitAIC([]float64{1, 2, 3, 4}, 0); err == nil {
		t.Fatal("want error for zero maxOrder")
	}
	if _, err := Fit([]float64{7, 7, 7, 7, 7}, 1); err == nil {
		t.Fatal("want error for constant series")
	}
}

func TestFitAICClampsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	m, err := FitAIC(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() > 8 {
		t.Fatalf("order %d not clamped", m.Order())
	}
}

func TestModelString(t *testing.T) {
	m := &Model{Coeffs: []float64{0.5}, Mean: 1, NoiseVar: 2, AIC: 3}
	if s := m.String(); s == "" {
		t.Fatal("empty String()")
	}
}

// Property: fitted AR(1) coefficient is always within (-1, 1) for
// stationary input, and the noise variance is non-negative.
func TestPropertyStationarity(t *testing.T) {
	f := func(seed int64, phiRaw uint8) bool {
		phi := (float64(phiRaw)/255)*1.8 - 0.9 // in [-0.9, 0.9]
		rng := rand.New(rand.NewSource(seed))
		xs := genAR(rng, []float64{phi}, 0, 5000)
		m, err := Fit(xs, 1)
		if err != nil {
			return false
		}
		return m.Coeffs[0] > -1 && m.Coeffs[0] < 1 && m.NoiseVar >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pred := NewPredictor(4, 512, 64)
	if pred.Ready() {
		t.Fatal("predictor ready with no data")
	}
	xs := genAR(rng, []float64{0.8}, 100, 5000)
	var sqErrAR, sqErrMean float64
	mean := 0.0
	for i, x := range xs {
		if i > 1000 {
			p := pred.PredictNext()
			sqErrAR += (p - x) * (p - x)
			sqErrMean += (mean - x) * (mean - x)
		}
		pred.Observe(x)
		mean += (x - mean) / float64(i+1)
	}
	if pred.Model() == nil {
		t.Fatal("predictor never fitted")
	}
	// AR prediction must clearly beat the running mean for an AR(1) input.
	if sqErrAR >= sqErrMean*0.75 {
		t.Fatalf("AR MSE %.1f not better than mean MSE %.1f", sqErrAR, sqErrMean)
	}
}

func TestPredictorWindowSlides(t *testing.T) {
	pred := NewPredictor(2, 16, 4)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		pred.Observe(rng.NormFloat64())
		pred.PredictNext()
	}
	if len(pred.history) > 32 {
		t.Fatalf("history grew to %d, want <= 2*window", len(pred.history))
	}
}

func TestPredictorDefaults(t *testing.T) {
	p := NewPredictor(0, 0, 0)
	if p.maxOrder != 8 || p.window != 4096 || p.refitEvm != 256 {
		t.Fatalf("defaults = %d %d %d", p.maxOrder, p.window, p.refitEvm)
	}
	// Before Ready, prediction is the running mean.
	p.Observe(4)
	p.Observe(6)
	if got := p.PredictNext(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("pre-ready prediction = %v, want 5", got)
	}
}

func TestLevinsonDurbinAllNoiseMonotone(t *testing.T) {
	// Innovation variance must be non-increasing with order.
	rng := rand.New(rand.NewSource(8))
	xs := genAR(rng, []float64{0.6, 0.2}, 0, 20000)
	for p := 1; p <= 6; p++ {
		m, err := Fit(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		if p > 1 {
			prev, err := Fit(xs, p-1)
			if err != nil {
				t.Fatal(err)
			}
			if m.NoiseVar > prev.NoiseVar+1e-9 {
				t.Fatalf("noise var increased from order %d (%v) to %d (%v)",
					p-1, prev.NoiseVar, p, m.NoiseVar)
			}
		}
	}
}
