package arima

import (
	"math"
	"math/rand"
	"testing"
)

// synthAR2 generates an AR(2) series with the given coefficients around
// mean mu.
func synthAR2(rng *rand.Rand, n int, a1, a2, mu, sigma float64) []float64 {
	xs := make([]float64, n)
	x1, x2 := mu, mu
	for i := range xs {
		x := mu + a1*(x1-mu) + a2*(x2-mu) + rng.NormFloat64()*sigma
		xs[i] = x
		x2, x1 = x1, x
	}
	return xs
}

func TestOnlineARRecoversAR2(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := synthAR2(rng, 20000, 0.6, -0.3, 5.0, 0.5)
	o := NewOnlineAR(8, 1) // no forgetting: should converge to batch fit
	for _, x := range xs {
		o.Observe(x)
	}
	if !o.Refit() || !o.Ready() {
		t.Fatal("refit failed on a healthy AR(2) stream")
	}
	if got := o.Mean(); math.Abs(got-5.0) > 0.2 {
		t.Fatalf("mean = %g, want ~5.0", got)
	}
	if o.Order() < 2 {
		t.Fatalf("order = %d, want >= 2", o.Order())
	}
	// The first two coefficients should be near the generator's.
	batch, err := FitAIC(xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0.6, -0.3} {
		onl := o.coeffs[i]
		if math.Abs(onl-want) > 0.1 {
			t.Errorf("coeff[%d] = %g, want ~%g (batch fit: %g)", i, onl, want, batch.Coeffs[i])
		}
	}
}

func TestOnlineARPredictTracksModelPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := synthAR2(rng, 8000, 0.5, 0.2, 1.0, 0.3)
	o := NewOnlineAR(4, 1)
	for _, x := range xs {
		o.Observe(x)
	}
	if !o.Refit() {
		t.Fatal("refit failed")
	}
	// A Model built from the online fitter's own parameters must agree
	// with the fitter's Predict exactly.
	m := &Model{Coeffs: append([]float64(nil), o.coeffs...), Mean: o.mean}
	want := m.Predict(xs)
	if got := o.Predict(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Predict = %g, model predict = %g", got, want)
	}
}

func TestOnlineARDeterministicAcrossReplays(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := synthAR2(rng, 5000, 0.4, 0.1, 2.0, 1.0)
	run := func() (float64, int, float64) {
		o := NewOnlineAR(8, 0.999)
		for i, x := range xs {
			o.Observe(x)
			if i%64 == 63 {
				o.Refit()
			}
		}
		return o.Predict(), o.Order(), o.NoiseVar()
	}
	p1, o1, n1 := run()
	p2, o2, n2 := run()
	if p1 != p2 || o1 != o2 || n1 != n2 {
		t.Fatalf("replay diverged: (%v,%d,%v) vs (%v,%d,%v)", p1, o1, n1, p2, o2, n2)
	}
}

func TestOnlineARNotReadyFallsBackToMean(t *testing.T) {
	o := NewOnlineAR(8, 1)
	if o.Predict() != 0 {
		t.Fatal("empty fitter should predict 0")
	}
	o.Observe(3)
	o.Observe(5)
	if got := o.Predict(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("unfitted Predict = %g, want running mean 4", got)
	}
	// Too few lags with weight: refit keeps it unfitted but doesn't fail.
	o.Refit()
	if o.Ready() && o.Order() > 2 {
		t.Fatalf("order %d from 2 observations", o.Order())
	}
}

func TestOnlineARConstantStreamStaysSane(t *testing.T) {
	o := NewOnlineAR(8, 1)
	for i := 0; i < 1000; i++ {
		o.Observe(7)
	}
	o.Refit()
	if got := o.Predict(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("constant stream predicts %g, want 7", got)
	}
}

func TestOnlineARStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := synthAR2(rng, 4000, 0.6, -0.2, 3.0, 0.4)
	o := NewOnlineAR(6, 0.9995)
	for i, x := range xs {
		o.Observe(x)
		if i%128 == 127 {
			o.Refit()
		}
	}
	r, err := RestoreOnlineAR(o.State())
	if err != nil {
		t.Fatal(err)
	}
	if r.Predict() != o.Predict() || r.Order() != o.Order() || r.Count() != o.Count() {
		t.Fatal("restored fitter diverged from original")
	}
	// Continued observation streams must stay identical.
	for i, x := range xs[:500] {
		o.Observe(x)
		r.Observe(x)
		if i%64 == 63 {
			o.Refit()
			r.Refit()
		}
	}
	if r.Predict() != o.Predict() {
		t.Fatal("restored fitter diverged after further observations")
	}

	// Invalid states are rejected.
	for _, mutate := range []func(*OnlineARState){
		func(st *OnlineARState) { st.MaxOrder = 0 },
		func(st *OnlineARState) { st.Decay = 0 },
		func(st *OnlineARState) { st.Ring = st.Ring[:1] },
		func(st *OnlineARState) { st.Pos = st.MaxOrder },
		func(st *OnlineARState) { st.Coeffs = make([]float64, st.MaxOrder+1) },
	} {
		st := o.State()
		mutate(&st)
		if _, err := RestoreOnlineAR(st); err == nil {
			t.Fatalf("restore accepted invalid state %+v", st)
		}
	}
}

func TestOnlineARHotPathAllocs(t *testing.T) {
	o := NewOnlineAR(8, 0.999)
	for i := 0; i < 100; i++ {
		o.Observe(float64(i % 13))
	}
	o.Refit()
	allocs := testing.AllocsPerRun(1000, func() {
		o.Observe(1.5)
		_ = o.Predict()
	})
	if allocs != 0 {
		t.Fatalf("Observe+Predict allocated %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() { o.Refit() })
	if allocs != 0 {
		t.Fatalf("Refit allocated %.1f/op, want 0", allocs)
	}
}
