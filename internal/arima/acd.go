package arima

import (
	"errors"
	"math"
)

// ACDModel is the Engle-Russell autoregressive conditional duration
// model ACD(1,1), the other candidate the paper tried for inter-arrival
// durations:
//
//	x_t = psi_t * eps_t,  eps_t ~ Exp(1)
//	psi_t = omega + alpha * x_{t-1} + beta * psi_{t-1}
type ACDModel struct {
	Omega, Alpha, Beta float64
	// LogLik is the maximized exponential log-likelihood.
	LogLik float64
	// Iterations spent in the optimizer (the cost the paper objects to).
	Iterations int
}

// Predict returns the conditional expected duration given the previous
// duration and previous conditional mean.
func (m *ACDModel) Predict(prevX, prevPsi float64) float64 {
	return m.Omega + m.Alpha*prevX + m.Beta*prevPsi
}

// Filter runs the recursion over a series, returning the one-step-ahead
// conditional means.
func (m *ACDModel) Filter(xs []float64) []float64 {
	psi := make([]float64, len(xs))
	if len(xs) == 0 {
		return psi
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	prev := mean
	for t := range xs {
		psi[t] = prev
		prev = m.Predict(xs[t], psi[t])
	}
	return psi
}

// FitACD fits ACD(1,1) by maximum likelihood with exponential
// innovations, using Nelder-Mead over (omega, alpha, beta). Each
// likelihood evaluation is a full O(n) pass, and the optimizer needs
// hundreds of them — the fitting cost that ruled the model out at I/O
// rates in the paper.
func FitACD(xs []float64) (*ACDModel, error) {
	if len(xs) < 32 {
		return nil, ErrTooShort
	}
	mean := 0.0
	for _, x := range xs {
		if x < 0 {
			return nil, errors.New("arima: ACD needs non-negative durations")
		}
		mean += x
	}
	mean /= float64(len(xs))
	if mean <= 0 {
		return nil, errors.New("arima: zero-mean durations")
	}

	evals := 0
	negLogLik := func(p [3]float64) float64 {
		evals++
		omega, alpha, beta := p[0], p[1], p[2]
		// Constraints: positivity and stationarity.
		if omega <= 0 || alpha < 0 || beta < 0 || alpha+beta >= 0.999 {
			return math.Inf(1)
		}
		psi := mean
		ll := 0.0
		for _, x := range xs {
			if psi < 1e-12 {
				psi = 1e-12
			}
			ll += -math.Log(psi) - x/psi
			psi = omega + alpha*x + beta*psi
		}
		return -ll
	}

	// Nelder-Mead from a method-of-moments-ish start.
	start := [3]float64{0.1 * mean, 0.1, 0.7}
	best, bestVal, iters := nelderMead3(negLogLik, start, 400, 1e-8)
	if math.IsInf(bestVal, 1) {
		return nil, errors.New("arima: ACD likelihood never finite")
	}
	return &ACDModel{
		Omega: best[0], Alpha: best[1], Beta: best[2],
		LogLik:     -bestVal,
		Iterations: iters + evals, // count likelihood passes as work
	}, nil
}

// nelderMead3 minimizes f over R^3.
func nelderMead3(f func([3]float64) float64, start [3]float64, maxIter int, tol float64) ([3]float64, float64, int) {
	const (
		alpha = 1.0
		gamma = 2.0
		rho   = 0.5
		sigma = 0.5
	)
	// Initial simplex.
	pts := [4][3]float64{start, start, start, start}
	for i := 0; i < 3; i++ {
		step := 0.1 * math.Abs(start[i])
		if step == 0 {
			step = 0.05
		}
		pts[i+1][i] += step
	}
	vals := [4]float64{}
	for i := range pts {
		vals[i] = f(pts[i])
	}
	iter := 0
	for ; iter < maxIter; iter++ {
		// Order.
		order := [4]int{0, 1, 2, 3}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if vals[order[j]] < vals[order[i]] {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		best, worst, second := order[0], order[3], order[2]
		if math.Abs(vals[worst]-vals[best]) < tol*(math.Abs(vals[best])+tol) {
			break
		}
		// Centroid of all but worst.
		var cen [3]float64
		for _, idx := range order[:3] {
			for k := 0; k < 3; k++ {
				cen[k] += pts[idx][k] / 3
			}
		}
		reflect := add3(cen, scale3(sub3(cen, pts[worst]), alpha))
		fr := f(reflect)
		switch {
		case fr < vals[best]:
			expand := add3(cen, scale3(sub3(cen, pts[worst]), gamma))
			fe := f(expand)
			if fe < fr {
				pts[worst], vals[worst] = expand, fe
			} else {
				pts[worst], vals[worst] = reflect, fr
			}
		case fr < vals[second]:
			pts[worst], vals[worst] = reflect, fr
		default:
			contract := add3(cen, scale3(sub3(pts[worst], cen), rho))
			fc := f(contract)
			if fc < vals[worst] {
				pts[worst], vals[worst] = contract, fc
			} else {
				// Shrink toward best.
				for i := range pts {
					if i == best {
						continue
					}
					pts[i] = add3(pts[best], scale3(sub3(pts[i], pts[best]), sigma))
					vals[i] = f(pts[i])
				}
			}
		}
	}
	bi := 0
	for i := 1; i < 4; i++ {
		if vals[i] < vals[bi] {
			bi = i
		}
	}
	return pts[bi], vals[bi], iter
}

func add3(a, b [3]float64) [3]float64 {
	return [3]float64{a[0] + b[0], a[1] + b[1], a[2] + b[2]}
}

func sub3(a, b [3]float64) [3]float64 {
	return [3]float64{a[0] - b[0], a[1] - b[1], a[2] - b[2]}
}

func scale3(a [3]float64, s float64) [3]float64 {
	return [3]float64{a[0] * s, a[1] * s, a[2] * s}
}
