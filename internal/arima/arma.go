package arima

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// This file implements the competing models the paper evaluated and
// rejected for the AR scheduling policy (Section V-B1: "We attempted to
// fit several AR models to our data, including ACD and ARIMA, and found
// that AR(p) is the only model that can be fitted quickly and efficiently
// to the millions of samples that need to be factored at the I/O level").
// ARI (differenced AR) and ARMA via Hannan-Rissanen live here; ACD lives
// in acd.go. BenchmarkFitSpeed in arima_bench_test.go substantiates the
// fitting-cost claim.

// ARIModel is an ARIMA(p, d, 0) model: the series differenced d times,
// modelled by AR(p).
type ARIModel struct {
	// D is the differencing order.
	D int
	// AR models the differenced series.
	AR *Model
}

// FitARI fits an ARIMA(p, d, 0): difference d times, then AIC-select an
// AR order up to maxOrder.
func FitARI(xs []float64, d, maxOrder int) (*ARIModel, error) {
	if d < 0 || d > 2 {
		return nil, fmt.Errorf("arima: differencing order %d outside [0,2]", d)
	}
	diffed := xs
	for i := 0; i < d; i++ {
		diffed = difference(diffed)
	}
	ar, err := FitAIC(diffed, maxOrder)
	if err != nil {
		return nil, err
	}
	return &ARIModel{D: d, AR: ar}, nil
}

// Predict forecasts the next value of the original series from its most
// recent observations (oldest first; needs at least D+1 values).
func (m *ARIModel) Predict(history []float64) float64 {
	if m.D == 0 {
		return m.AR.Predict(history)
	}
	if len(history) <= m.D {
		if len(history) > 0 {
			return history[len(history)-1]
		}
		return m.AR.Mean
	}
	// Difference the history, forecast the next difference, integrate.
	diffed := history
	lasts := make([]float64, 0, m.D)
	for i := 0; i < m.D; i++ {
		lasts = append(lasts, diffed[len(diffed)-1])
		diffed = difference(diffed)
	}
	next := m.AR.Predict(diffed)
	for i := m.D - 1; i >= 0; i-- {
		next += lasts[i]
	}
	return next
}

func difference(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}

// ARMAModel is an ARMA(p, q) model fitted by the Hannan-Rissanen
// two-stage regression:
//
//	X_t = mu + sum_i phi_i (X_{t-i} - mu) + sum_j theta_j e_{t-j} + e_t
type ARMAModel struct {
	Phi      []float64
	Theta    []float64
	Mean     float64
	NoiseVar float64
}

// Order returns (p, q).
func (m *ARMAModel) Order() (int, int) { return len(m.Phi), len(m.Theta) }

// Predict forecasts one step ahead given recent observations and the
// model's in-sample residuals for the same instants (both oldest-first;
// residuals may be nil, treating past shocks as zero).
func (m *ARMAModel) Predict(history, residuals []float64) float64 {
	pred := m.Mean
	for i := 1; i <= len(m.Phi); i++ {
		idx := len(history) - i
		if idx < 0 {
			continue
		}
		pred += m.Phi[i-1] * (history[idx] - m.Mean)
	}
	for j := 1; j <= len(m.Theta); j++ {
		idx := len(residuals) - j
		if idx < 0 {
			continue
		}
		pred += m.Theta[j-1] * residuals[idx]
	}
	return pred
}

// FitARMA fits ARMA(p, q) via Hannan-Rissanen: (1) fit a long AR to
// estimate innovations, (2) regress X_t on its own lags and the lagged
// innovation estimates. Deliberately the *cheap* ARMA estimator — and
// still an order of magnitude more work than Levinson-Durbin AR, which is
// the paper's point.
func FitARMA(xs []float64, p, q int) (*ARMAModel, error) {
	if p < 0 || q < 0 || p+q == 0 {
		return nil, fmt.Errorf("arima: bad ARMA order (%d,%d)", p, q)
	}
	longOrder := 2 * (p + q)
	if longOrder < 8 {
		longOrder = 8
	}
	if len(xs) < longOrder*4 {
		return nil, ErrTooShort
	}
	mu := stats.Mean(xs)

	// Stage 1: long AR for innovation estimates.
	longAR, err := Fit(xs, longOrder)
	if err != nil {
		return nil, err
	}
	resid := make([]float64, len(xs))
	for t := longOrder; t < len(xs); t++ {
		resid[t] = xs[t] - longAR.Predict(xs[:t])
	}

	// Stage 2: OLS of X_t - mu on (X_{t-1}-mu..X_{t-p}-mu,
	// e_{t-1}..e_{t-q}).
	start := longOrder + q
	rows := len(xs) - start
	cols := p + q
	if rows <= cols {
		return nil, ErrTooShort
	}
	xtx := make([][]float64, cols)
	for i := range xtx {
		xtx[i] = make([]float64, cols)
	}
	xty := make([]float64, cols)
	rowBuf := make([]float64, cols)
	for t := start; t < len(xs); t++ {
		for i := 0; i < p; i++ {
			rowBuf[i] = xs[t-1-i] - mu
		}
		for j := 0; j < q; j++ {
			rowBuf[p+j] = resid[t-1-j]
		}
		y := xs[t] - mu
		for i := 0; i < cols; i++ {
			for j := i; j < cols; j++ {
				xtx[i][j] += rowBuf[i] * rowBuf[j]
			}
			xty[i] += rowBuf[i] * y
		}
	}
	for i := 0; i < cols; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += 1e-9 // ridge epsilon for numerical safety
	}
	coeffs, err := solveSPD(xtx, xty)
	if err != nil {
		return nil, err
	}
	m := &ARMAModel{
		Phi:   append([]float64(nil), coeffs[:p]...),
		Theta: append([]float64(nil), coeffs[p:]...),
		Mean:  mu,
	}
	// Innovation variance from the final residuals.
	sse, n := 0.0, 0
	for t := start; t < len(xs); t++ {
		e := xs[t] - m.Predict(xs[:t], resid[:t])
		sse += e * e
		n++
	}
	m.NoiseVar = sse / float64(n)
	return m, nil
}

// solveSPD solves Ax=b for symmetric positive-definite A via Cholesky.
func solveSPD(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, errors.New("arima: normal equations not positive definite")
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	// Forward then backward substitution.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * y[k]
		}
		y[i] = sum / l[i][i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x, nil
}
