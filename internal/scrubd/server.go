package scrubd

import (
	"errors"
	"io"
	"net/http"
	"sync"

	"repro/internal/obs"
)

// ServerConfig parameterizes the HTTP surface.
type ServerConfig struct {
	// MaxBodyBytes bounds a feed request body; larger bodies are a typed
	// 413. Default 8 MiB.
	MaxBodyBytes int64
	// CheckpointPath, when set, enables POST /v1/checkpoint: the engine
	// state is written there atomically. When empty the endpoint answers
	// 501.
	CheckpointPath string
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the engine's HTTP+JSON surface:
//
//	POST /v1/feed        batched feed records
//	GET  /v1/decide      scrub decision for one device
//	POST /v1/sync        block until the feed queues drain
//	POST /v1/checkpoint  write a checkpoint file
//	GET  /metrics        obs export (prom/json/csv)
//	GET  /healthz        liveness
//
// The decision path reuses pooled scratch buffers so the work this
// package adds per query — parse, decide, encode — allocates nothing;
// what remains is net/http's own per-request cost.
type Server struct {
	eng *Engine
	cfg ServerConfig
	mux *http.ServeMux

	// Operational gauges live in a server-level registry, set at scrape
	// time, so the engine's own snapshot stays a pure function of the
	// applied feed (see Engine.ObsSnapshot).
	regMu    sync.Mutex
	reg      *obs.Registry
	gDevices *obs.Gauge
	gPending *obs.Gauge

	bufs sync.Pool // *[]byte: response bodies and feed bodies
	recs sync.Pool // *[]Record: decoded feed batches
}

// NewServer wires a server around an engine.
func NewServer(eng *Engine, cfg ServerConfig) *Server {
	s := &Server{eng: eng, cfg: cfg.withDefaults(), mux: http.NewServeMux(), reg: obs.New()}
	s.gDevices = s.reg.Gauge("scrubd.server.devices")
	s.gPending = s.reg.Gauge("scrubd.server.queue_pending")
	s.bufs.New = func() any { b := make([]byte, 0, 4096); return &b }
	s.recs.New = func() any { r := make([]Record, 0, 256); return &r }
	s.mux.HandleFunc("/v1/feed", s.handleFeed)
	s.mux.HandleFunc("/v1/decide", s.handleDecide)
	s.mux.HandleFunc("/v1/sync", s.handleSync)
	s.mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	s.mux.Handle("/metrics", obs.Handler(s.scrape))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// scrape merges the engine's deterministic snapshot with the server's
// operational gauges.
func (s *Server) scrape() obs.Snapshot {
	eng, err := s.eng.ObsSnapshot()
	if err != nil {
		return obs.Snapshot{}
	}
	s.regMu.Lock()
	s.gDevices.Set(s.eng.Devices())
	s.gPending.Set(s.eng.Pending())
	op := s.reg.Snapshot()
	s.regMu.Unlock()
	merged, err := obs.MergeSnapshots(eng, op)
	if err != nil {
		return eng
	}
	return merged
}

// writeJSON sends buf with the API content type.
func writeJSON(w http.ResponseWriter, status int, buf []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(buf)
}

// writeAPIError sends a typed error response.
func (s *Server) writeAPIError(w http.ResponseWriter, e *APIError) {
	bp := s.bufs.Get().(*[]byte)
	buf := AppendError((*bp)[:0], e)
	writeJSON(w, e.Status, buf)
	*bp = buf[:0]
	s.bufs.Put(bp)
}

// methodNotAllowed answers 405 with the allowed methods.
func (s *Server) methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	s.writeAPIError(w, errMethod)
}

var errMethod = &APIError{405, "method_not_allowed"}

// readBody reads the request body into a pooled buffer, enforcing
// MaxBodyBytes. The returned put func recycles the buffer.
func (s *Server) readBody(r *http.Request) ([]byte, func(), *APIError) {
	if r.ContentLength > s.cfg.MaxBodyBytes {
		return nil, nil, errBodyTooLong
	}
	bp := s.bufs.Get().(*[]byte)
	buf := (*bp)[:0]
	lim := io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := lim.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			*bp = buf[:0]
			s.bufs.Put(bp)
			return nil, nil, errTruncated
		}
	}
	if int64(len(buf)) > s.cfg.MaxBodyBytes {
		*bp = buf[:0]
		s.bufs.Put(bp)
		return nil, nil, errBodyTooLong
	}
	put := func() {
		*bp = buf[:0]
		s.bufs.Put(bp)
	}
	return buf, put, nil
}

// The static instances feedStatus hands out, so the feed path does not
// allocate error values.
var (
	feedErrBackpressure = &APIError{http.StatusTooManyRequests, "backpressure"}
	feedErrTooManyDevs  = &APIError{http.StatusInsufficientStorage, "too_many_devices"}
	feedErrClosed       = &APIError{http.StatusServiceUnavailable, "closed"}
	feedErrBadRecord    = &APIError{http.StatusBadRequest, "bad_record"}
	feedErrInternal     = &APIError{http.StatusInternalServerError, "internal"}
)

// feedStatus maps an engine ingestion error onto a typed response.
func feedStatus(err error) *APIError {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrBackpressure):
		return feedErrBackpressure
	case errors.Is(err, ErrTooManyDevices):
		return feedErrTooManyDevs
	case errors.Is(err, ErrClosed):
		return feedErrClosed
	case errors.Is(err, errRecordInvalid):
		return feedErrBadRecord
	default:
		return feedErrInternal
	}
}

func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, "POST")
		return
	}
	body, put, apiErr := s.readBody(r)
	if apiErr != nil {
		s.writeAPIError(w, apiErr)
		return
	}
	defer put()
	rp := s.recs.Get().(*[]Record)
	recs, err := DecodeFeed(body, (*rp)[:0])
	if err != nil {
		*rp = recs[:0]
		s.recs.Put(rp)
		var ae *APIError
		if !errors.As(err, &ae) {
			ae = errMalformed
		}
		s.writeAPIError(w, ae)
		return
	}
	accepted, ingErr := s.eng.IngestBatch(recs)
	*rp = recs[:0]
	s.recs.Put(rp)

	status := http.StatusOK
	ae := feedStatus(ingErr)
	if ae != nil {
		status = ae.Status
	}
	bp := s.bufs.Get().(*[]byte)
	buf := AppendAccepted((*bp)[:0], accepted, ae)
	writeJSON(w, status, buf)
	*bp = buf[:0]
	s.bufs.Put(bp)
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		s.methodNotAllowed(w, "GET, HEAD")
		return
	}
	dev, nowUs, err := ParseDecideQuery(r.URL.RawQuery)
	if err != nil {
		var ae *APIError
		if !errors.As(err, &ae) {
			ae = errMalformed
		}
		s.writeAPIError(w, ae)
		return
	}
	var d Decision
	if err := s.eng.DecideString(dev, nowUs, &d); err != nil {
		if errors.Is(err, ErrUnknownDevice) {
			s.writeAPIError(w, errUnknownDev)
			return
		}
		s.writeAPIError(w, feedErrInternal)
		return
	}
	bp := s.bufs.Get().(*[]byte)
	buf := AppendDecision((*bp)[:0], &d)
	writeJSON(w, http.StatusOK, buf)
	*bp = buf[:0]
	s.bufs.Put(bp)
}

var errUnknownDev = &APIError{404, "unknown_device"}

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, "POST")
		return
	}
	if err := s.eng.Sync(r.Context()); err != nil {
		s.writeAPIError(w, errSyncCancelled)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

var errSyncCancelled = &APIError{http.StatusServiceUnavailable, "sync_cancelled"}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, "POST")
		return
	}
	if s.cfg.CheckpointPath == "" {
		s.writeAPIError(w, errCkptDisabled)
		return
	}
	n, err := s.eng.CheckpointFile(s.cfg.CheckpointPath)
	if err != nil {
		s.writeAPIError(w, errCkptFailed)
		return
	}
	bp := s.bufs.Get().(*[]byte)
	buf := appendCheckpointed((*bp)[:0], n)
	writeJSON(w, http.StatusOK, buf)
	*bp = buf[:0]
	s.bufs.Put(bp)
}

var (
	errCkptDisabled = &APIError{http.StatusNotImplemented, "checkpoint_disabled"}
	errCkptFailed   = &APIError{http.StatusInternalServerError, "checkpoint_failed"}
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		s.methodNotAllowed(w, "GET, HEAD")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n") //scrublint:allow errsink best-effort health body; http.ResponseWriter has no durability contract
}
