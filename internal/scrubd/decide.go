package scrubd

import "time"

// Reason explains a decision; the wire encoding is the lowercase name.
type Reason uint8

const (
	// ReasonWarming: too few observed gaps to trust the AR fit, and the
	// waiting threshold has not elapsed either.
	ReasonWarming Reason = iota
	// ReasonHold: the AR model predicts a short idle interval; keep the
	// device alone until the waiting threshold would fire anyway.
	ReasonHold
	// ReasonThreshold: the device has been idle past the waiting
	// threshold — the paper's Waiting rule, which keeps firing
	// back-to-back until a foreground arrival.
	ReasonThreshold
	// ReasonPredicted: the AR model predicts an idle interval past the
	// AR threshold, so scrubbing starts without waiting out the
	// threshold — the paper's Autoregression rule.
	ReasonPredicted
)

var reasonNames = [...]string{"warming", "hold", "threshold", "predicted"}

// String returns the wire name of the reason.
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "unknown"
}

// Decision is one query's answer. Callers own the struct; Decide only
// writes scalars into it, so a reused Decision never allocates.
type Decision struct {
	// Scrub is the verdict: issue a scrub request now (true) or leave
	// the device alone (false).
	Scrub bool
	// Reason explains the verdict.
	Reason Reason
	// IdleUs is how long the device has been idle at the query's
	// timestamp, µs.
	IdleUs int64
	// PredGapUs is the AR model's prediction of the current idle
	// interval's total length, µs (0 while warming).
	PredGapUs int64
	// WaitUs is, for a non-scrub verdict, how long from now the Waiting
	// rule would fire if the device stays idle, µs.
	WaitUs int64
	// ReqBytes is, for a scrub verdict, the suggested request size:
	// the predicted remaining idle time converted through
	// Config.ScrubRate and clamped to [MinReqBytes, MaxReqBytes].
	ReqBytes int64
	// Gaps is the number of inter-arrival gaps backing the statistics.
	Gaps int64
}

// Decide answers a scrub-decision query for a device at nowUs
// (microseconds on the device's feed clock; <= 0 means "at the device's
// last-seen feed timestamp"). The decision is a pure function of the
// records applied so far, never of the wall clock, so replaying a feed
// replays the decisions byte for byte.
//
//scrub:hotpath
func (e *Engine) Decide(dev []byte, nowUs int64, out *Decision) error {
	s := e.shards[shardIndex(dev, len(e.shards))]
	s.mu.Lock()
	d, ok := s.devices[string(dev)]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownDevice
	}
	e.decideLocked(s, d, nowUs, out)
	s.mu.Unlock()
	return nil
}

// DecideString is Decide with a string device name — the HTTP path's
// entry point, where the name is a substring of the request's query
// string and converting to []byte would allocate.
//
//scrub:hotpath
func (e *Engine) DecideString(dev string, nowUs int64, out *Decision) error {
	s := e.shards[shardIndexString(dev, len(e.shards))]
	s.mu.Lock()
	d, ok := s.devices[dev]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownDevice
	}
	e.decideLocked(s, d, nowUs, out)
	s.mu.Unlock()
	return nil
}

// decideLocked computes the decision for d. Caller holds s.mu.
//
//scrub:hotpath
func (e *Engine) decideLocked(s *shard, d *device, nowUs int64, out *Decision) {
	if nowUs <= 0 || nowUs < d.lastAtUs {
		nowUs = d.lastAtUs
	}
	idleUs := nowUs - d.lastAtUs
	waitUs := int64(e.cfg.WaitThreshold / time.Microsecond)
	arUs := int64(e.cfg.ARThreshold / time.Microsecond)

	out.IdleUs = idleUs
	out.Gaps = d.gaps
	out.PredGapUs = 0
	out.WaitUs = 0
	out.ReqBytes = 0

	warmed := d.gaps >= int64(e.cfg.MinGaps) && d.ar.Ready()
	var remUs int64 // predicted remaining idle time once firing
	if warmed {
		predUs := int64(d.ar.Predict() * 1e6)
		if predUs < 0 {
			predUs = 0
		}
		out.PredGapUs = predUs
		remUs = predUs - idleUs
		if remUs <= 0 {
			// The AR prediction has already elapsed; fall back to the
			// hazard curve: E[D - t | D > t] from the device's observed
			// idle distribution (decreasing hazard rates make this grow
			// with t, the paper's core empirical fact).
			remUs = int64(d.idle.ExpectedRemaining(time.Duration(idleUs)*time.Microsecond) / time.Microsecond)
		}
		switch {
		case idleUs >= waitUs:
			out.Scrub, out.Reason = true, ReasonThreshold
			s.insFireThr.Inc()
		case predUs > arUs:
			out.Scrub, out.Reason = true, ReasonPredicted
			s.insFirePred.Inc()
		default:
			out.Scrub, out.Reason = false, ReasonHold
			out.WaitUs = waitUs - idleUs
			s.insHoldAR.Inc()
		}
	} else {
		// Warmup: the pure Waiting rule, sized by the threshold itself.
		remUs = waitUs
		if idleUs >= waitUs {
			out.Scrub, out.Reason = true, ReasonThreshold
			s.insFireThr.Inc()
		} else {
			out.Scrub, out.Reason = false, ReasonWarming
			out.WaitUs = waitUs - idleUs
			s.insHoldWarm.Inc()
		}
	}
	if out.Scrub {
		req := remUs / 1e6 * e.cfg.ScrubRate
		req += remUs % 1e6 * e.cfg.ScrubRate / 1e6
		if req < e.cfg.MinReqBytes {
			req = e.cfg.MinReqBytes
		}
		if req > e.cfg.MaxReqBytes {
			req = e.cfg.MaxReqBytes
		}
		out.ReqBytes = req
	}
	s.hIdleAtQuery.Observe(time.Duration(idleUs) * time.Microsecond)
	if out.PredGapUs > 0 {
		s.hPredGap.Observe(time.Duration(out.PredGapUs) * time.Microsecond)
	}
}
