package scrubd

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"repro/internal/arima"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Checkpoint layout mirrors fleet checkpoints: an 8-byte magic, a
// 4-byte big-endian length, the gob-encoded body, and a trailing
// CRC-32 (IEEE) of the gob bytes. Truncation fails the length or CRC
// read; corruption fails the CRC compare; both reject before any state
// is trusted.
const checkpointMagic = "SCRBDSV1"

// checkpointVersion gates decode compatibility.
const checkpointVersion = 1

// deviceCkpt is one device's serialized state.
//
//scrublint:snapshot device
type deviceCkpt struct {
	Name     string
	LastAtUs int64
	Gaps     int64
	AR       arima.OnlineARState
	Idle     stats.OnlineIdleState
}

// checkpoint is the serialized engine.
type checkpoint struct {
	Version int
	Cfg     Config
	Devices []deviceCkpt // sorted by name
	Obs     obs.Snapshot // merged across shards
}

// Checkpoint serializes the engine's device table and metrics,
// returning the bytes written. Call Sync (or ApplyQueued) first:
// queued-but-unapplied records are not part of a checkpoint, only
// applied state is.
func (e *Engine) Checkpoint(w io.Writer) (int64, error) {
	ck := checkpoint{Version: checkpointVersion, Cfg: e.cfg}
	for _, s := range e.shards {
		s.mu.Lock()
		for _, d := range s.devices {
			ck.Devices = append(ck.Devices, deviceCkpt{
				Name:     d.name,
				LastAtUs: d.lastAtUs,
				Gaps:     d.gaps,
				AR:       d.ar.State(),
				Idle:     d.idle.State(),
			})
		}
		s.mu.Unlock()
	}
	// Name order makes equal states equal bytes regardless of shard
	// count or map iteration order.
	sort.Slice(ck.Devices, func(i, j int) bool { return ck.Devices[i].Name < ck.Devices[j].Name })
	snap, err := e.ObsSnapshot()
	if err != nil {
		return 0, fmt.Errorf("scrubd: checkpoint metrics: %w", err)
	}
	ck.Obs = snap

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return 0, fmt.Errorf("scrubd: encode checkpoint: %w", err)
	}
	var total int64
	n, err := io.WriteString(w, checkpointMagic)
	total += int64(n)
	if err != nil {
		return total, err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	n, err = w.Write(hdr[:])
	total += int64(n)
	if err != nil {
		return total, err
	}
	n, err = w.Write(buf.Bytes())
	total += int64(n)
	if err != nil {
		return total, err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(buf.Bytes()))
	n, err = w.Write(sum[:])
	total += int64(n)
	return total, err
}

// CheckpointFile writes a checkpoint atomically: to a temp file in the
// destination directory first, renamed over path only after a
// successful sync, so a crash mid-write leaves either the old
// checkpoint or none — never a torn one.
func (e *Engine) CheckpointFile(path string) (int64, error) {
	f, err := os.CreateTemp(dirOf(path), ".scrubd-ckpt-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	committed := false
	defer func() {
		// Best-effort cleanup on any failed exit; the write error already
		// propagates to the caller.
		if !committed {
			f.Close()
			os.Remove(tmp)
		}
	}()
	n, err := e.Checkpoint(f)
	if err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	committed = true
	return n, os.Rename(tmp, path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// Restore rebuilds an engine from a checkpoint, verifying magic,
// length and CRC before decoding anything. The restored engine answers
// the same decisions and exports the same metrics snapshot as the
// original did at checkpoint time; call Start to resume ingestion.
func Restore(r io.Reader) (*Engine, error) {
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("scrubd: checkpoint truncated: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("scrubd: not a scrubd checkpoint (magic %q)", magic)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("scrubd: checkpoint truncated: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("scrubd: checkpoint truncated: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("scrubd: checkpoint truncated: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != binary.BigEndian.Uint32(sum[:]) {
		return nil, fmt.Errorf("scrubd: checkpoint corrupted: CRC mismatch")
	}
	var ck checkpoint
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("scrubd: decode checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("scrubd: checkpoint version %d (want %d)", ck.Version, checkpointVersion)
	}
	e := NewEngine(ck.Cfg)
	for i := range ck.Devices {
		dc := &ck.Devices[i]
		if !validDeviceNameString(dc.Name) {
			return nil, fmt.Errorf("scrubd: checkpoint device %d: invalid name", i)
		}
		if dc.LastAtUs < 0 || dc.Gaps < 0 {
			return nil, fmt.Errorf("scrubd: checkpoint device %q: negative state", dc.Name)
		}
		ar, err := arima.RestoreOnlineAR(dc.AR)
		if err != nil {
			return nil, fmt.Errorf("scrubd: checkpoint device %q: %w", dc.Name, err)
		}
		idle, ok := stats.RestoreOnlineIdle(dc.Idle)
		if !ok {
			return nil, fmt.Errorf("scrubd: checkpoint device %q: corrupt idle histogram", dc.Name)
		}
		s := e.shards[shardIndexString(dc.Name, len(e.shards))]
		if _, dup := s.devices[dc.Name]; dup {
			return nil, fmt.Errorf("scrubd: checkpoint device %q: duplicate", dc.Name)
		}
		s.devices[dc.Name] = &device{
			name:     dc.Name,
			lastAtUs: dc.LastAtUs,
			gaps:     dc.Gaps,
			ar:       ar,
			idle:     idle,
		}
		e.devices.Add(1)
	}
	// The merged metrics land in shard 0's registry: instrument pointers
	// resolved at construction stay valid (Counter returns the existing
	// instrument), and ObsSnapshot merges shards, so the restored
	// engine's snapshot equals the checkpointed one byte for byte.
	if err := e.shards[0].reg.MergeSnapshot(ck.Obs); err != nil {
		return nil, fmt.Errorf("scrubd: restore metrics: %w", err)
	}
	return e, nil
}

// RestoreFile is Restore over a file.
func RestoreFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Restore(f)
}
