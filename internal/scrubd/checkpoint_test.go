package scrubd_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scrubd"
)

// buildEngine feeds the deterministic synthetic workload and applies
// it, ready for checkpointing.
func buildEngine(t *testing.T, cfg scrubd.Config, seed int64, devices, per int) (*scrubd.Engine, []int64) {
	t.Helper()
	recs, last := genRecords(seed, devices, per)
	eng := scrubd.NewEngine(cfg)
	if _, err := eng.IngestBatch(recs); err != nil {
		t.Fatal(err)
	}
	eng.ApplyQueued()
	return eng, last
}

// snapJSON renders the engine's merged metrics snapshot.
func snapJSON(t *testing.T, eng *scrubd.Engine) string {
	t.Helper()
	snap, err := eng.ObsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := snap.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// decisions renders every device's decision at fixed idle offsets.
func decisions(t *testing.T, eng *scrubd.Engine, last []int64) []byte {
	t.Helper()
	var dec scrubd.Decision
	var out []byte
	for i, lastAt := range last {
		name := []byte(fmt.Sprintf("d%04d", i))
		for _, idle := range []int64{0, 250_000, 800_000} {
			if err := eng.Decide(name, lastAt+idle, &dec); err != nil {
				t.Fatalf("decide %s: %v", name, err)
			}
			out = scrubd.AppendDecision(out, &dec)
		}
	}
	return out
}

// TestCheckpointRoundTrip pins the restore contract: a restored engine
// answers byte-identical decisions, exports a byte-identical metrics
// snapshot, and keeps evolving identically when fed more records.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := scrubd.Config{Shards: 4, MinGaps: 6, RefitEvery: 8}
	eng, last := buildEngine(t, cfg, 23, 16, 25)

	wantSnap := snapJSON(t, eng)
	var buf bytes.Buffer
	n, err := eng.Checkpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Checkpoint reported %d bytes, wrote %d", n, buf.Len())
	}

	restored, err := scrubd.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Devices() != eng.Devices() {
		t.Fatalf("restored %d devices, want %d", restored.Devices(), eng.Devices())
	}
	if got := snapJSON(t, restored); got != wantSnap {
		t.Fatalf("restored metrics snapshot differs:\n%s\nvs\n%s", got, wantSnap)
	}
	// Decisions mutate decide counters identically on both engines, so
	// compare decisions first, snapshots again after.
	if a, b := decisions(t, eng, last), decisions(t, restored, last); !bytes.Equal(a, b) {
		t.Fatal("restored decisions differ")
	}
	if a, b := snapJSON(t, eng), snapJSON(t, restored); a != b {
		t.Fatal("metrics snapshots diverged after identical queries")
	}

	// Continued feeding evolves both identically, including AR refits.
	more, last2 := genRecords(29, 16, 25)
	shift := last[0] + 10_000_000
	for i := range more {
		more[i].AtUs += shift
	}
	for i := range last2 {
		last2[i] += shift
	}
	for _, e := range []*scrubd.Engine{eng, restored} {
		if _, err := e.IngestBatch(more); err != nil {
			t.Fatal(err)
		}
		e.ApplyQueued()
	}
	if a, b := decisions(t, eng, last2), decisions(t, restored, last2); !bytes.Equal(a, b) {
		t.Fatal("decisions diverged after post-restore feeding")
	}
}

// TestCheckpointFileRoundTrip covers the atomic file path.
func TestCheckpointFileRoundTrip(t *testing.T) {
	eng, last := buildEngine(t, scrubd.Config{Shards: 2, MinGaps: 4}, 5, 6, 12)
	path := filepath.Join(t.TempDir(), "scrubd.ckpt")
	if _, err := eng.CheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := scrubd.RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := decisions(t, eng, last), decisions(t, restored, last); !bytes.Equal(a, b) {
		t.Fatal("file-restored decisions differ")
	}
}

// TestCheckpointRejectsDamage pins the framing checks: truncation,
// bit flips and a foreign magic must all fail with a descriptive error
// before any state is trusted.
func TestCheckpointRejectsDamage(t *testing.T) {
	eng, _ := buildEngine(t, scrubd.Config{Shards: 1, MinGaps: 4}, 3, 4, 10)
	var buf bytes.Buffer
	if _, err := eng.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 4, 11, len(good) / 2, len(good) - 1} {
			if _, err := scrubd.Restore(bytes.NewReader(good[:cut])); err == nil {
				t.Fatalf("accepted truncation at %d", cut)
			} else if !strings.Contains(err.Error(), "truncated") {
				t.Fatalf("truncation at %d: %v", cut, err)
			}
		}
	})
	t.Run("corrupted", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)/2] ^= 0x40
		if _, err := scrubd.Restore(bytes.NewReader(bad)); err == nil {
			t.Fatal("accepted corruption")
		} else if !strings.Contains(err.Error(), "corrupted") {
			t.Fatalf("corruption: %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		copy(bad, "NOTHING1")
		if _, err := scrubd.Restore(bytes.NewReader(bad)); err == nil {
			t.Fatal("accepted foreign magic")
		} else if !strings.Contains(err.Error(), "magic") {
			t.Fatalf("magic: %v", err)
		}
	})
}
