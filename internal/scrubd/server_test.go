package scrubd_test

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scrubd"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run %s -update): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (if the change is intended, rerun with -update):\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// newTestServer stands up an engine (with running appliers) behind the
// full HTTP surface.
func newTestServer(t *testing.T, cfg scrubd.Config, scfg scrubd.ServerConfig) (*scrubd.Engine, *httptest.Server) {
	t.Helper()
	eng := scrubd.NewEngine(cfg)
	eng.Start()
	ts := httptest.NewServer(scrubd.NewServer(eng, scfg).Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return eng, ts
}

// goldenFeed is the fixed fixture feed: sda with four gaps
// (100/200/100/200 ms), sdb with one 50 ms gap. Everything the golden
// tests observe is integer-exact, so the files are byte-stable across
// hosts.
const goldenFeed = `{"records":[
  {"dev":"sda","at_us":1,"bytes":4096},
  {"dev":"sda","at_us":100001,"bytes":4096},
  {"dev":"sda","at_us":300001,"bytes":8192},
  {"dev":"sda","at_us":400001,"bytes":4096},
  {"dev":"sda","at_us":600001,"bytes":4096},
  {"dev":"sdb","at_us":1,"bytes":512},
  {"dev":"sdb","at_us":50001,"bytes":512}
]}`

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestServiceGolden drives the black-box request sequence — feed,
// sync, three decisions, metrics scrape — and pins the decision JSON
// and the Prometheus exposition byte-for-byte.
func TestServiceGolden(t *testing.T) {
	_, ts := newTestServer(t, scrubd.Config{Shards: 2}, scrubd.ServerConfig{})

	if code, body := post(t, ts.URL+"/v1/feed", goldenFeed); code != 200 || body != "{\"accepted\":7}\n" {
		t.Fatalf("feed: %d %q", code, body)
	}
	if code, _ := post(t, ts.URL+"/v1/sync", ""); code != 204 {
		t.Fatalf("sync: %d", code)
	}

	var sb strings.Builder
	for _, q := range []string{
		"dev=sda&now_us=700001",  // idle 100ms < 500ms threshold: hold (warming)
		"dev=sda&now_us=1200001", // idle 600ms >= threshold: fire
		"dev=sdb",                // now defaults to last arrival: idle 0
	} {
		code, body := get(t, ts.URL+"/v1/decide?"+q)
		if code != 200 {
			t.Fatalf("decide %s: status %d: %s", q, code, body)
		}
		sb.WriteString("### GET /v1/decide?" + q + "\n")
		sb.WriteString(body)
	}
	checkGolden(t, "decide.json.golden", sb.String())

	code, body := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics: status %d", code)
	}
	checkGolden(t, "metrics.prom.golden", body)
}

// TestServiceErrors pins the typed 4xx surface end to end.
func TestServiceErrors(t *testing.T) {
	_, ts := newTestServer(t, scrubd.Config{Shards: 1}, scrubd.ServerConfig{MaxBodyBytes: 256})

	cases := []struct {
		name, method, path, body string
		wantCode                 int
		wantKind                 string
	}{
		{"malformed feed", "POST", "/v1/feed", `{"records":[{]}`, 400, "malformed_json"},
		{"truncated feed", "POST", "/v1/feed", `{"records":[`, 400, "truncated"},
		{"bad device", "POST", "/v1/feed", `{"records":[{"dev":"a b","at_us":1}]}`, 400, "bad_device"},
		{"overflow ts", "POST", "/v1/feed", `{"records":[{"dev":"a","at_us":99999999999999999999}]}`, 400, "bad_number"},
		{"dup key", "POST", "/v1/feed", `{"records":[{"dev":"a","dev":"a","at_us":1}]}`, 400, "duplicate_key"},
		{"oversized body", "POST", "/v1/feed", `{"records":[` + strings.Repeat(`{"dev":"aaaaaaaa","at_us":1},`, 20) + `{"dev":"a","at_us":1}]}`, 413, "body_too_large"},
		{"feed wrong method", "GET", "/v1/feed", "", 405, "method_not_allowed"},
		{"decide missing dev", "GET", "/v1/decide", "", 400, "missing_dev"},
		{"decide bad now", "GET", "/v1/decide?dev=a&now_us=x", "", 400, "bad_number"},
		{"decide unknown dev", "GET", "/v1/decide?dev=ghost", "", 404, "unknown_device"},
		{"decide wrong method", "POST", "/v1/decide?dev=a", "", 405, "method_not_allowed"},
		{"sync wrong method", "GET", "/v1/sync", "", 405, "method_not_allowed"},
		{"checkpoint disabled", "POST", "/v1/checkpoint", "", 501, "checkpoint_disabled"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != c.wantCode {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, c.wantCode, b)
			}
			if c.wantKind != "" && !strings.Contains(string(b), `"error":"`+c.wantKind+`"`) {
				t.Fatalf("body %q missing kind %q", b, c.wantKind)
			}
		})
	}
}

// TestServiceBackpressure is the slow-consumer battery: with tiny
// queues and no appliers draining them, feeding must answer 429 with a
// partial accept count — and report ErrBackpressure at the engine API.
func TestServiceBackpressure(t *testing.T) {
	// No Start: records queue but are never applied, like a stalled
	// consumer.
	eng := scrubd.NewEngine(scrubd.Config{Shards: 1, QueueCap: 4})
	ts := httptest.NewServer(scrubd.NewServer(eng, scrubd.ServerConfig{}).Handler())
	t.Cleanup(ts.Close)

	// body(lo) renders records lo..9 — the retry protocol sends only
	// the unaccepted remainder.
	const total = 10
	body := func(lo int) string {
		var sb strings.Builder
		sb.WriteString(`{"records":[`)
		for i := lo; i < total; i++ {
			if i > lo {
				sb.WriteString(",")
			}
			sb.WriteString(`{"dev":"sda","at_us":` + strings.Repeat("1", i+1) + `}`)
		}
		sb.WriteString(`]}`)
		return sb.String()
	}

	code, resp := post(t, ts.URL+"/v1/feed", body(0))
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", code, resp)
	}
	if resp != "{\"accepted\":4,\"error\":\"backpressure\"}\n" {
		t.Fatalf("body %q", resp)
	}

	// Drain four slots, retry the remainder, repeat: every round makes
	// progress and the last lands with 200.
	sent := 4
	for round := 0; sent < total; round++ {
		if round > 5 {
			t.Fatal("backpressure never cleared")
		}
		if n := eng.ApplyQueued(); n == 0 {
			t.Fatal("drain made no progress")
		}
		code, resp = post(t, ts.URL+"/v1/feed", body(sent))
		var acc int
		if _, err := fmt.Sscanf(resp, `{"accepted":%d`, &acc); err != nil {
			t.Fatalf("unparsable feed response %q", resp)
		}
		sent += acc
		if code == 200 {
			continue
		}
		if code != http.StatusTooManyRequests {
			t.Fatalf("retry: status %d (%s)", code, resp)
		}
	}
	eng.ApplyQueued()
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after final drain", eng.Pending())
	}
	var dec scrubd.Decision
	if err := eng.Decide([]byte("sda"), 0, &dec); err != nil || dec.Gaps != total-1 {
		t.Fatalf("after retries: gaps = %d err %v, want %d", dec.Gaps, err, total-1)
	}
}

// TestServiceHealthAndMetricsFormats covers the remaining surface.
func TestServiceHealthAndMetricsFormats(t *testing.T) {
	_, ts := newTestServer(t, scrubd.Config{Shards: 1}, scrubd.ServerConfig{})

	if code, body := get(t, ts.URL+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	for _, f := range []string{"prom", "json", "csv"} {
		if code, body := get(t, ts.URL+"/metrics?format="+f); code != 200 || body == "" {
			t.Fatalf("metrics %s: %d", f, code)
		}
	}
	if code, _ := get(t, ts.URL+"/metrics?format=xml"); code != 400 {
		t.Fatalf("metrics xml: want 400")
	}
}

// TestServiceCheckpointEndpoint round-trips engine state through the
// checkpoint endpoint and RestoreFile.
func TestServiceCheckpointEndpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	eng, ts := newTestServer(t, scrubd.Config{Shards: 2}, scrubd.ServerConfig{CheckpointPath: path})

	if code, _ := post(t, ts.URL+"/v1/feed", goldenFeed); code != 200 {
		t.Fatalf("feed: %d", code)
	}
	if code, _ := post(t, ts.URL+"/v1/sync", ""); code != 204 {
		t.Fatal("sync failed")
	}
	code, body := post(t, ts.URL+"/v1/checkpoint", "")
	if code != 200 || !strings.HasPrefix(body, `{"bytes":`) {
		t.Fatalf("checkpoint: %d %q", code, body)
	}

	restored, err := scrubd.RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, b scrubd.Decision
	if err := eng.Decide([]byte("sda"), 1200001, &a); err != nil {
		t.Fatal(err)
	}
	if err := restored.Decide([]byte("sda"), 1200001, &b); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("restored decision differs: %+v vs %+v", a, b)
	}
}
