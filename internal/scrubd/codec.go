package scrubd

import "strconv"

// APIError is a typed request error: an HTTP status plus a stable
// machine-readable kind that becomes the JSON "error" field. All
// instances are package-level statics so the decode and encode paths
// never allocate an error value per request.
type APIError struct {
	Status int
	Kind   string
}

// Error implements error with the wire kind.
func (e *APIError) Error() string { return "scrubd: " + e.Kind }

// The decoder's typed rejections. Every malformed input maps onto one
// of these — never onto a panic and never onto a 5xx.
var (
	errTruncated    = &APIError{400, "truncated"}
	errMalformed    = &APIError{400, "malformed_json"}
	errBadDevice    = &APIError{400, "bad_device"}
	errBadNumber    = &APIError{400, "bad_number"}
	errDupKey       = &APIError{400, "duplicate_key"}
	errUnknownField = &APIError{400, "unknown_field"}
	errMissingField = &APIError{400, "missing_field"}
	errTrailing     = &APIError{400, "trailing_data"}
	errMissingDev   = &APIError{400, "missing_dev"}
	errBodyTooLong  = &APIError{413, "body_too_large"}
)

// maxDeviceName bounds device-name length on the wire.
const maxDeviceName = 128

// devNameByte reports whether b may appear in a device name. The
// charset is deliberately narrow — letters, digits, ".", "_", ":", "/"
// and "-" — so names never need JSON escaping or percent-decoding and
// both codecs can slice them straight out of the input buffer.
func devNameByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	case b == '.', b == '_', b == ':', b == '/', b == '-':
		return true
	}
	return false
}

// validDeviceName checks a complete candidate name.
func validDeviceName(s []byte) bool {
	if len(s) == 0 || len(s) > maxDeviceName {
		return false
	}
	for _, b := range s {
		if !devNameByte(b) {
			return false
		}
	}
	return true
}

// feedParser is a strict recursive-descent parser for the feed body:
//
//	{"records":[{"dev":"sda","at_us":12345,"bytes":4096}, ...]}
//
// Strictness is the fuzz battery's contract: unknown fields, duplicate
// keys, escapes in device names, negative or overflowing numbers and
// trailing bytes are all typed 400s, and Record.Dev slices alias the
// request body (the engine copies names only on first sight of a
// device).
type feedParser struct {
	b   []byte
	pos int
}

func (p *feedParser) skipWS() {
	for p.pos < len(p.b) {
		switch p.b[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// expect consumes c or fails.
func (p *feedParser) expect(c byte) error {
	p.skipWS()
	if p.pos >= len(p.b) {
		return errTruncated
	}
	if p.b[p.pos] != c {
		return errMalformed
	}
	p.pos++
	return nil
}

// peek returns the next non-space byte without consuming it.
func (p *feedParser) peek() (byte, error) {
	p.skipWS()
	if p.pos >= len(p.b) {
		return 0, errTruncated
	}
	return p.b[p.pos], nil
}

// key consumes a quoted object key and returns it as a slice of the
// input. Keys share the device-name charset, which covers every key
// this API defines.
func (p *feedParser) key() ([]byte, error) {
	if err := p.expect('"'); err != nil {
		return nil, err
	}
	start := p.pos
	for p.pos < len(p.b) && devNameByte(p.b[p.pos]) {
		p.pos++
	}
	if p.pos >= len(p.b) {
		return nil, errTruncated
	}
	if p.b[p.pos] != '"' {
		return nil, errMalformed
	}
	k := p.b[start:p.pos]
	p.pos++
	return k, nil
}

// devValue consumes a quoted device name.
func (p *feedParser) devValue() ([]byte, error) {
	if err := p.expect('"'); err != nil {
		return nil, err
	}
	start := p.pos
	for p.pos < len(p.b) && devNameByte(p.b[p.pos]) {
		p.pos++
	}
	if p.pos >= len(p.b) {
		return nil, errTruncated
	}
	if p.b[p.pos] != '"' {
		// An escape, a forbidden byte, or an unterminated string.
		return nil, errBadDevice
	}
	name := p.b[start:p.pos]
	p.pos++
	if !validDeviceName(name) {
		return nil, errBadDevice
	}
	return name, nil
}

// intValue consumes a non-negative int64, rejecting signs, fractions,
// exponents and overflow.
func (p *feedParser) intValue() (int64, error) {
	p.skipWS()
	start := p.pos
	var v int64
	for p.pos < len(p.b) {
		c := p.b[p.pos]
		if c < '0' || c > '9' {
			break
		}
		d := int64(c - '0')
		if v > (int64MaxValue-d)/10 {
			return 0, errBadNumber
		}
		v = v*10 + d
		p.pos++
	}
	if p.pos == start {
		if p.pos >= len(p.b) {
			return 0, errTruncated
		}
		return 0, errBadNumber
	}
	// A fraction or exponent after the digits is not an int64.
	if p.pos < len(p.b) {
		switch p.b[p.pos] {
		case '.', 'e', 'E':
			return 0, errBadNumber
		}
	}
	return v, nil
}

const int64MaxValue = int64(^uint64(0) >> 1)

// record consumes one feed-record object.
func (p *feedParser) record() (Record, error) {
	var rec Record
	if err := p.expect('{'); err != nil {
		return rec, err
	}
	var haveDev, haveAt, haveBytes bool
	for {
		k, err := p.key()
		if err != nil {
			return rec, err
		}
		if err := p.expect(':'); err != nil {
			return rec, err
		}
		switch string(k) {
		case "dev":
			if haveDev {
				return rec, errDupKey
			}
			haveDev = true
			if rec.Dev, err = p.devValue(); err != nil {
				return rec, err
			}
		case "at_us":
			if haveAt {
				return rec, errDupKey
			}
			haveAt = true
			if rec.AtUs, err = p.intValue(); err != nil {
				return rec, err
			}
		case "bytes":
			if haveBytes {
				return rec, errDupKey
			}
			haveBytes = true
			if rec.Bytes, err = p.intValue(); err != nil {
				return rec, err
			}
		default:
			return rec, errUnknownField
		}
		c, err := p.peek()
		if err != nil {
			return rec, err
		}
		switch c {
		case ',':
			p.pos++
		case '}':
			p.pos++
			if !haveDev || !haveAt {
				return rec, errMissingField
			}
			if rec.AtUs == 0 {
				return rec, errBadNumber
			}
			return rec, nil
		default:
			return rec, errMalformed
		}
		p.skipWS()
	}
}

// DecodeFeed parses a feed request body, appending the parsed records
// to dst (a reused buffer) and returning the extended slice. Returned
// Dev slices alias body; they are only valid while body is.
func DecodeFeed(body []byte, dst []Record) ([]Record, error) {
	p := feedParser{b: body}
	if err := p.expect('{'); err != nil {
		return dst, err
	}
	k, err := p.key()
	if err != nil {
		return dst, err
	}
	if string(k) != "records" {
		return dst, errUnknownField
	}
	if err := p.expect(':'); err != nil {
		return dst, err
	}
	if err := p.expect('['); err != nil {
		return dst, err
	}
	c, err := p.peek()
	if err != nil {
		return dst, err
	}
	if c == ']' {
		p.pos++
	} else {
		for {
			rec, err := p.record()
			if err != nil {
				return dst, err
			}
			dst = append(dst, rec)
			c, err := p.peek()
			if err != nil {
				return dst, err
			}
			if c == ',' {
				p.pos++
				continue
			}
			if c == ']' {
				p.pos++
				break
			}
			return dst, errMalformed
		}
	}
	if err := p.expect('}'); err != nil {
		return dst, err
	}
	p.skipWS()
	if p.pos != len(p.b) {
		return dst, errTrailing
	}
	return dst, nil
}

// ParseDecideQuery parses a decision query's raw query string
// ("dev=sda&now_us=12345"). No percent-decoding: the device charset
// never needs it, and anything percent-encoded is a typed 400. The
// returned dev is a substring of q, so parsing allocates nothing.
//
//scrub:hotpath
func ParseDecideQuery(q string) (dev string, nowUs int64, err error) {
	var seenDev, seenNow bool
	for len(q) > 0 {
		var pair string
		if i := indexByte(q, '&'); i >= 0 {
			pair, q = q[:i], q[i+1:]
		} else {
			pair, q = q, ""
		}
		if pair == "" {
			continue
		}
		eq := indexByte(pair, '=')
		if eq < 0 {
			return "", 0, errMalformed
		}
		key, val := pair[:eq], pair[eq+1:]
		switch key {
		case "dev":
			if seenDev {
				return "", 0, errDupKey
			}
			seenDev = true
			if !validDeviceNameString(val) {
				return "", 0, errBadDevice
			}
			dev = val
		case "now_us":
			if seenNow {
				return "", 0, errDupKey
			}
			seenNow = true
			nowUs, err = parseUintString(val)
			if err != nil {
				return "", 0, err
			}
		default:
			return "", 0, errUnknownField
		}
	}
	if !seenDev {
		return "", 0, errMissingDev
	}
	return dev, nowUs, nil
}

// indexByte is strings.IndexByte without importing strings into the
// hot path's review surface.
//
//scrub:hotpath
func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// validDeviceNameString is validDeviceName over a string.
//
//scrub:hotpath
func validDeviceNameString(s string) bool {
	if len(s) == 0 || len(s) > maxDeviceName {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !devNameByte(s[i]) {
			return false
		}
	}
	return true
}

// parseUintString parses a non-negative decimal int64 with overflow
// checking.
//
//scrub:hotpath
func parseUintString(s string) (int64, error) {
	if len(s) == 0 {
		return 0, errBadNumber
	}
	var v int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, errBadNumber
		}
		d := int64(c - '0')
		if v > (int64MaxValue-d)/10 {
			return 0, errBadNumber
		}
		v = v*10 + d
	}
	return v, nil
}

// AppendDecision encodes a decision as one JSON object plus newline,
// appending to dst. Field order is fixed, so equal decisions are equal
// bytes — the replay battery compares raw encoder output.
//
//scrub:hotpath
func AppendDecision(dst []byte, d *Decision) []byte {
	dst = append(dst, `{"scrub":`...)
	if d.Scrub {
		dst = append(dst, "true"...)
	} else {
		dst = append(dst, "false"...)
	}
	dst = append(dst, `,"reason":"`...)
	dst = append(dst, d.Reason.String()...)
	dst = append(dst, `","idle_us":`...)
	dst = strconv.AppendInt(dst, d.IdleUs, 10)
	dst = append(dst, `,"pred_gap_us":`...)
	dst = strconv.AppendInt(dst, d.PredGapUs, 10)
	dst = append(dst, `,"wait_us":`...)
	dst = strconv.AppendInt(dst, d.WaitUs, 10)
	dst = append(dst, `,"req_bytes":`...)
	dst = strconv.AppendInt(dst, d.ReqBytes, 10)
	dst = append(dst, `,"gaps":`...)
	dst = strconv.AppendInt(dst, d.Gaps, 10)
	dst = append(dst, '}', '\n')
	return dst
}

// AppendError encodes an APIError response body.
func AppendError(dst []byte, e *APIError) []byte {
	dst = append(dst, `{"error":"`...)
	dst = append(dst, e.Kind...)
	dst = append(dst, '"', '}', '\n')
	return dst
}

// appendCheckpointed encodes a checkpoint response.
func appendCheckpointed(dst []byte, bytes int64) []byte {
	dst = append(dst, `{"bytes":`...)
	dst = strconv.AppendInt(dst, bytes, 10)
	dst = append(dst, '}', '\n')
	return dst
}

// AppendAccepted encodes a feed response: how many records the engine
// accepted, and — when err is non-nil — which typed error stopped the
// batch.
func AppendAccepted(dst []byte, accepted int, e *APIError) []byte {
	dst = append(dst, `{"accepted":`...)
	dst = strconv.AppendInt(dst, int64(accepted), 10)
	if e != nil {
		dst = append(dst, `,"error":"`...)
		dst = append(dst, e.Kind...)
		dst = append(dst, '"')
	}
	dst = append(dst, '}', '\n')
	return dst
}
