package scrubd_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/scrubd"
)

// kindOf extracts the typed API error kind, failing on any other error
// shape — the decoders must never return an untyped error.
func kindOf(t *testing.T, err error) string {
	t.Helper()
	if err == nil {
		return ""
	}
	var ae *scrubd.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("untyped decoder error: %v", err)
	}
	if ae.Status < 400 || ae.Status > 499 {
		t.Fatalf("decoder error %q has status %d, want 4xx", ae.Kind, ae.Status)
	}
	return ae.Kind
}

func TestDecodeFeedValid(t *testing.T) {
	body := `{"records":[
		{"dev":"sda","at_us":100,"bytes":4096},
		{"dev":"nvme0n1/p2","bytes":0,"at_us":200},
		{"dev":"b","at_us":300}
	]}`
	recs, err := scrubd.DecodeFeed([]byte(body), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d records, want 3", len(recs))
	}
	if string(recs[0].Dev) != "sda" || recs[0].AtUs != 100 || recs[0].Bytes != 4096 {
		t.Fatalf("rec[0] = %+v", recs[0])
	}
	if string(recs[1].Dev) != "nvme0n1/p2" || recs[1].AtUs != 200 {
		t.Fatalf("rec[1] = %+v", recs[1])
	}
	if recs[2].Bytes != 0 {
		t.Fatalf("rec[2].Bytes = %d, want 0 default", recs[2].Bytes)
	}

	if recs, err := scrubd.DecodeFeed([]byte(`{"records":[]}`), nil); err != nil || len(recs) != 0 {
		t.Fatalf("empty records: %v, %d recs", err, len(recs))
	}
}

func TestDecodeFeedRejects(t *testing.T) {
	cases := []struct {
		name, body, kind string
	}{
		{"empty", ``, "truncated"},
		{"half object", `{"records":[{"dev":"a","at_us":1`, "truncated"},
		{"cut mid string", `{"records":[{"dev":"ab`, "truncated"},
		{"array not object", `[]`, "malformed_json"},
		{"records not array", `{"records":{}}`, "malformed_json"},
		{"bare comma", `{"records":[{"dev":"a","at_us":1},]}`, "malformed_json"},
		{"wrong top key", `{"record":[]}`, "unknown_field"},
		{"unknown rec key", `{"records":[{"nope":1}]}`, "unknown_field"},
		{"empty dev", `{"records":[{"dev":"","at_us":1}]}`, "bad_device"},
		{"escape in dev", `{"records":[{"dev":"a\"b","at_us":1}]}`, "bad_device"},
		{"space in dev", `{"records":[{"dev":"a b","at_us":1}]}`, "bad_device"},
		{"dev too long", `{"records":[{"dev":"` + strings.Repeat("x", 129) + `","at_us":1}]}`, "bad_device"},
		{"dup dev", `{"records":[{"dev":"a","dev":"b","at_us":1}]}`, "duplicate_key"},
		{"dup at_us", `{"records":[{"dev":"a","at_us":1,"at_us":2}]}`, "duplicate_key"},
		{"missing at_us", `{"records":[{"dev":"a"}]}`, "missing_field"},
		{"missing dev", `{"records":[{"at_us":1}]}`, "missing_field"},
		{"zero at_us", `{"records":[{"dev":"a","at_us":0}]}`, "bad_number"},
		{"negative", `{"records":[{"dev":"a","at_us":-5}]}`, "bad_number"},
		{"float", `{"records":[{"dev":"a","at_us":1.5}]}`, "bad_number"},
		{"exponent", `{"records":[{"dev":"a","at_us":1e3}]}`, "bad_number"},
		{"overflow", `{"records":[{"dev":"a","at_us":9223372036854775808}]}`, "bad_number"},
		{"way overflow", `{"records":[{"dev":"a","at_us":99999999999999999999999}]}`, "bad_number"},
		{"trailing", `{"records":[]} x`, "trailing_data"},
		{"double body", `{"records":[]}{"records":[]}`, "trailing_data"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := scrubd.DecodeFeed([]byte(c.body), nil)
			if err == nil {
				t.Fatalf("accepted %q", c.body)
			}
			if kind := kindOf(t, err); kind != c.kind {
				t.Fatalf("kind = %q, want %q", kind, c.kind)
			}
		})
	}

	// int64 max itself is legal.
	recs, err := scrubd.DecodeFeed([]byte(`{"records":[{"dev":"a","at_us":9223372036854775807}]}`), nil)
	if err != nil || recs[0].AtUs != 9223372036854775807 {
		t.Fatalf("max int64: %v %+v", err, recs)
	}
}

func TestParseDecideQuery(t *testing.T) {
	dev, now, err := scrubd.ParseDecideQuery("dev=sda&now_us=12345")
	if err != nil || dev != "sda" || now != 12345 {
		t.Fatalf("got %q %d %v", dev, now, err)
	}
	dev, now, err = scrubd.ParseDecideQuery("dev=nvme0n1")
	if err != nil || dev != "nvme0n1" || now != 0 {
		t.Fatalf("got %q %d %v", dev, now, err)
	}

	cases := []struct{ q, kind string }{
		{"", "missing_dev"},
		{"now_us=5", "missing_dev"},
		{"dev=", "bad_device"},
		{"dev=a%20b", "bad_device"},
		{"dev=a&dev=b", "duplicate_key"},
		{"dev=a&now_us=1&now_us=2", "duplicate_key"},
		{"dev=a&now_us=", "bad_number"},
		{"dev=a&now_us=-1", "bad_number"},
		{"dev=a&now_us=1.5", "bad_number"},
		{"dev=a&now_us=9223372036854775808", "bad_number"},
		{"dev=a&verbose=1", "unknown_field"},
		{"dev", "malformed_json"},
	}
	for _, c := range cases {
		_, _, err := scrubd.ParseDecideQuery(c.q)
		if err == nil {
			t.Fatalf("accepted %q", c.q)
		}
		if kind := kindOf(t, err); kind != c.kind {
			t.Fatalf("%q: kind = %q, want %q", c.q, kind, c.kind)
		}
	}
}

// FuzzDecodeFeed drives the feed decoder with arbitrary bodies: it
// must never panic, never return an untyped error, and every accepted
// record must satisfy the engine's input invariants.
func FuzzDecodeFeed(f *testing.F) {
	f.Add([]byte(`{"records":[{"dev":"sda","at_us":100,"bytes":4096}]}`))
	f.Add([]byte(`{"records":[]}`))
	f.Add([]byte(`{"records":[{"dev":"a","dev":"b","at_us":1}]}`))
	f.Add([]byte(`{"records":[{"dev":"a","at_us":99999999999999999999}]}`))
	f.Add([]byte(`{"records":[{"dev":"a\"b","at_us":1}]}`))
	f.Add([]byte(`{"records":[{"dev":"sda","at_us":1},{"dev":"sda","at_us":1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(` `))
	f.Fuzz(func(t *testing.T, body []byte) {
		recs, err := scrubd.DecodeFeed(body, nil)
		if err != nil {
			var ae *scrubd.APIError
			if !errors.As(err, &ae) {
				t.Fatalf("untyped error: %v", err)
			}
			if ae.Status < 400 || ae.Status > 499 {
				t.Fatalf("non-4xx decoder error: %d %s", ae.Status, ae.Kind)
			}
			return
		}
		for i, r := range recs {
			if len(r.Dev) == 0 || len(r.Dev) > 128 {
				t.Fatalf("record %d: invalid dev length %d", i, len(r.Dev))
			}
			if r.AtUs <= 0 || r.Bytes < 0 {
				t.Fatalf("record %d: invalid numbers %+v", i, r)
			}
		}
	})
}

// FuzzParseDecideQuery drives the query parser with arbitrary strings.
func FuzzParseDecideQuery(f *testing.F) {
	f.Add("dev=sda&now_us=12345")
	f.Add("dev=a&dev=b")
	f.Add("now_us=9223372036854775808")
	f.Add("dev=%2e%2e")
	f.Add("&&&")
	f.Add("dev==")
	f.Fuzz(func(t *testing.T, q string) {
		dev, now, err := scrubd.ParseDecideQuery(q)
		if err != nil {
			var ae *scrubd.APIError
			if !errors.As(err, &ae) {
				t.Fatalf("untyped error: %v", err)
			}
			if ae.Status < 400 || ae.Status > 499 {
				t.Fatalf("non-4xx parser error: %d %s", ae.Status, ae.Kind)
			}
			return
		}
		if dev == "" || len(dev) > 128 || now < 0 {
			t.Fatalf("accepted invalid query %q -> %q %d", q, dev, now)
		}
	})
}
