// Package scrubd is the online scrub-scheduling service: the paper's
// Waiting and Autoregression decision rules served as a long-running
// daemon instead of replayed offline.
//
// The Engine ingests batched per-device I/O feed records through
// bounded per-shard queues (explicit backpressure via ErrBackpressure,
// never unbounded growth), folds each record into online per-device
// statistics — a stats.OnlineIdle histogram of inter-arrival gaps and
// an arima.OnlineAR fitter updated incrementally, never refitted from
// raw history — and answers "scrub now / wait / request size" decision
// queries. The Server wraps the engine in an HTTP+JSON surface
// (/v1/feed, /v1/decide, /v1/sync, /v1/checkpoint, /metrics, /healthz)
// with hand-rolled, allocation-free JSON codecs, and checkpoints device
// state with the same CRC-framed gob discipline as fleet checkpoints.
//
// Two invariants carry over from the simulator core:
//
//  1. No wall clock. Package scrubd is a sim-clock package under
//     scrublint: every timestamp comes from feed records or query
//     parameters, so feeding the same record stream twice — at any
//     batch size or shard count — produces byte-identical decision
//     sequences and metric snapshots. The service is deterministically
//     replayable in tests.
//  2. Zero allocations steady-state on the query hot path. Decide and
//     the codecs are annotated //scrub:hotpath, enforced by scrublint
//     and pinned by testing.AllocsPerRun tests.
package scrubd
