package scrubd_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/scrubd"
)

// genRecords builds a deterministic synthetic feed: devices named
// "d<i>", each with per inter-arrival gaps drawn from a seeded
// per-device AR(1)-shaped process. Records are grouped per device with
// strictly increasing timestamps.
func genRecords(seed int64, devices, per int) ([]scrubd.Record, []int64) {
	var recs []scrubd.Record
	last := make([]int64, devices)
	for i := 0; i < devices; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		name := []byte(fmt.Sprintf("d%04d", i))
		at := int64(1)
		dev := 0.0
		mean := 50_000 + rng.Int63n(100_000)
		for j := 0; j < per; j++ {
			dev = 0.6*dev + rng.NormFloat64()*float64(mean)/5
			g := mean + int64(dev)
			if g < 1_000 {
				g = 1_000
			}
			at += g
			recs = append(recs, scrubd.Record{Dev: name, AtUs: at, Bytes: 4096})
		}
		last[i] = at
	}
	return recs, last
}

// replay feeds recs through a fresh engine in batches of batch records
// (manual apply: no applier goroutines, fully deterministic), then
// queries every device at three idle offsets and returns the
// concatenated decision encodings plus the metrics snapshot JSON.
func replay(t *testing.T, cfg scrubd.Config, recs []scrubd.Record, last []int64, batch int) ([]byte, string) {
	t.Helper()
	eng := scrubd.NewEngine(cfg)
	rest := recs
	for len(rest) > 0 {
		n := batch
		if n > len(rest) {
			n = len(rest)
		}
		acc, err := eng.IngestBatch(rest[:n])
		if err != nil && !errors.Is(err, scrubd.ErrBackpressure) {
			t.Fatalf("ingest: %v", err)
		}
		eng.ApplyQueued()
		rest = rest[acc:]
	}
	var dec scrubd.Decision
	var out []byte
	for i, lastAt := range last {
		name := []byte(fmt.Sprintf("d%04d", i))
		for _, idle := range []int64{0, 200_000, 700_000} {
			if err := eng.Decide(name, lastAt+idle, &dec); err != nil {
				t.Fatalf("decide %s: %v", name, err)
			}
			out = scrubd.AppendDecision(out, &dec)
		}
	}
	snap, err := eng.ObsSnapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var sb bytes.Buffer
	if err := snap.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	return out, sb.String()
}

// TestReplayDeterministic is the service-level determinism battery:
// the same feed must produce byte-identical decision sequences and
// metric snapshots when replayed twice, when split into different
// batch sizes, and when sharded 1 vs 8 ways — mirroring the fleet
// engine's 1-vs-8-shard gate.
func TestReplayDeterministic(t *testing.T) {
	recs, last := genRecords(7, 40, 30)
	base := scrubd.Config{Shards: 4, MinGaps: 8, RefitEvery: 8}

	d1, s1 := replay(t, base, recs, last, len(recs))
	d2, s2 := replay(t, base, recs, last, len(recs))
	if !bytes.Equal(d1, d2) || s1 != s2 {
		t.Fatalf("same feed, same batching: decisions or snapshots diverged")
	}

	for _, batch := range []int{1, 7, 256} {
		db, sb := replay(t, base, recs, last, batch)
		if !bytes.Equal(d1, db) {
			t.Fatalf("batch=%d: decisions diverged from single-batch replay", batch)
		}
		if s1 != sb {
			t.Fatalf("batch=%d: metric snapshots diverged from single-batch replay", batch)
		}
	}

	for _, shards := range []int{1, 8} {
		cfg := base
		cfg.Shards = shards
		ds, ss := replay(t, cfg, recs, last, 100)
		if !bytes.Equal(d1, ds) {
			t.Fatalf("shards=%d: decisions diverged from shards=4 replay", shards)
		}
		if s1 != ss {
			t.Fatalf("shards=%d: metric snapshots diverged from shards=4 replay", shards)
		}
	}
}

// TestStaleRecordsIdempotent pins the retry contract: re-ingesting an
// already-applied batch only bumps the stale counter and changes no
// decision state.
func TestStaleRecordsIdempotent(t *testing.T) {
	recs, last := genRecords(3, 5, 20)
	cfg := scrubd.Config{Shards: 2, MinGaps: 4, RefitEvery: 4}
	eng := scrubd.NewEngine(cfg)
	if _, err := eng.IngestBatch(recs); err != nil {
		t.Fatal(err)
	}
	eng.ApplyQueued()
	var before scrubd.Decision
	if err := eng.Decide([]byte("d0000"), last[0]+100_000, &before); err != nil {
		t.Fatal(err)
	}

	if _, err := eng.IngestBatch(recs); err != nil {
		t.Fatal(err)
	}
	eng.ApplyQueued()
	var after scrubd.Decision
	if err := eng.Decide([]byte("d0000"), last[0]+100_000, &after); err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("replayed batch changed decision state: %+v vs %+v", before, after)
	}

	snap, err := eng.ObsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var gotStale, gotRecords int64
	for _, c := range snap.Counters {
		switch c.Name {
		case "scrubd.ingest.stale_dropped":
			gotStale = c.Value
		case "scrubd.ingest.records":
			gotRecords = c.Value
		}
	}
	if gotStale != int64(len(recs)) {
		t.Fatalf("stale_dropped = %d, want %d", gotStale, len(recs))
	}
	if gotRecords != int64(2*len(recs)) {
		t.Fatalf("ingest.records = %d, want %d", gotRecords, 2*len(recs))
	}
}

// TestBackpressure pins the bounded-queue contract: a full shard queue
// reports ErrBackpressure with a partial accept count, and the
// remainder ingests cleanly after a drain.
func TestBackpressure(t *testing.T) {
	eng := scrubd.NewEngine(scrubd.Config{Shards: 1, QueueCap: 8})
	recs := make([]scrubd.Record, 16)
	for i := range recs {
		recs[i] = scrubd.Record{Dev: []byte("sda"), AtUs: int64(i + 1), Bytes: 1}
	}
	n, err := eng.IngestBatch(recs)
	if !errors.Is(err, scrubd.ErrBackpressure) {
		t.Fatalf("err = %v, want ErrBackpressure", err)
	}
	if n != 8 {
		t.Fatalf("accepted %d, want 8", n)
	}
	if eng.Pending() != 8 {
		t.Fatalf("pending = %d, want 8", eng.Pending())
	}
	if applied := eng.ApplyQueued(); applied != 8 {
		t.Fatalf("applied %d, want 8", applied)
	}
	if n2, err := eng.IngestBatch(recs[n:]); err != nil || n2 != len(recs)-n {
		t.Fatalf("retry: accepted %d err %v", n2, err)
	}
	eng.ApplyQueued()
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after drain", eng.Pending())
	}
}

// TestMaxDevices pins the device-table cap.
func TestMaxDevices(t *testing.T) {
	eng := scrubd.NewEngine(scrubd.Config{Shards: 1, MaxDevices: 2})
	recs := []scrubd.Record{
		{Dev: []byte("a"), AtUs: 1}, {Dev: []byte("b"), AtUs: 1}, {Dev: []byte("c"), AtUs: 1},
	}
	n, err := eng.IngestBatch(recs)
	if !errors.Is(err, scrubd.ErrTooManyDevices) {
		t.Fatalf("err = %v, want ErrTooManyDevices", err)
	}
	if n != 2 {
		t.Fatalf("accepted %d, want 2", n)
	}
	if eng.Devices() != 2 {
		t.Fatalf("devices = %d, want 2", eng.Devices())
	}
}

// TestClosedEngine pins post-Close behavior: feeding fails typed,
// decisions still answer.
func TestClosedEngine(t *testing.T) {
	eng := scrubd.NewEngine(scrubd.Config{Shards: 1})
	if _, err := eng.IngestBatch([]scrubd.Record{{Dev: []byte("sda"), AtUs: 1}}); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	eng.Close()
	if _, err := eng.IngestBatch([]scrubd.Record{{Dev: []byte("sda"), AtUs: 2}}); !errors.Is(err, scrubd.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	var dec scrubd.Decision
	if err := eng.Decide([]byte("sda"), 0, &dec); err != nil {
		t.Fatalf("decide after close: %v", err)
	}
}

// TestDecisionSemantics pins the decision rules against the paper's
// policies: warming holds below the waiting threshold, the threshold
// fires past it with a clamped request size, and an AR-warmed device
// with short predicted gaps holds where a warming one would too.
func TestDecisionSemantics(t *testing.T) {
	cfg := scrubd.Config{
		Shards:        1,
		MinGaps:       4,
		RefitEvery:    4,
		WaitThreshold: 500 * time.Millisecond,
		ARThreshold:   2 * time.Second,
	}
	eng := scrubd.NewEngine(cfg)

	// "warm": 24 gaps alternating 80/120 ms — enough for an AR fit.
	// "cold": a single gap — far below MinGaps.
	var recs []scrubd.Record
	at := int64(1)
	for i := 0; i < 24; i++ {
		g := int64(80_000)
		if i%2 == 1 {
			g = 120_000
		}
		at += g
		recs = append(recs, scrubd.Record{Dev: []byte("warm"), AtUs: at})
	}
	warmLast := at
	recs = append(recs,
		scrubd.Record{Dev: []byte("cold"), AtUs: 1},
		scrubd.Record{Dev: []byte("cold"), AtUs: 100_001},
	)
	if _, err := eng.IngestBatch(recs); err != nil {
		t.Fatal(err)
	}
	eng.ApplyQueued()

	var dec scrubd.Decision
	// Cold device, idle below threshold: hold, warming.
	if err := eng.Decide([]byte("cold"), 100_001+100_000, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Scrub || dec.Reason != scrubd.ReasonWarming {
		t.Fatalf("cold short idle: %+v", dec)
	}
	if dec.WaitUs != 400_000 {
		t.Fatalf("cold WaitUs = %d, want 400000", dec.WaitUs)
	}
	// Cold device, idle past threshold: fire on the Waiting rule.
	if err := eng.Decide([]byte("cold"), 100_001+600_000, &dec); err != nil {
		t.Fatal(err)
	}
	if !dec.Scrub || dec.Reason != scrubd.ReasonThreshold {
		t.Fatalf("cold long idle: %+v", dec)
	}
	if dec.ReqBytes < 64<<10 || dec.ReqBytes > 8<<20 {
		t.Fatalf("ReqBytes %d outside clamp", dec.ReqBytes)
	}
	// Warm device at idle 0: the fit predicts ~100ms gaps, far below the
	// 2s AR threshold — hold, with an AR-informed reason and a
	// plausible gap prediction.
	if err := eng.Decide([]byte("warm"), warmLast, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Scrub {
		t.Fatalf("warm idle 0 fired: %+v", dec)
	}
	if dec.Reason != scrubd.ReasonHold {
		t.Fatalf("warm reason = %v, want hold", dec.Reason)
	}
	if dec.PredGapUs <= 0 || dec.PredGapUs > 1_000_000 {
		t.Fatalf("warm PredGapUs = %d, want ~100ms", dec.PredGapUs)
	}
	// Warm device past the waiting threshold still fires.
	if err := eng.Decide([]byte("warm"), warmLast+600_000, &dec); err != nil {
		t.Fatal(err)
	}
	if !dec.Scrub || dec.Reason != scrubd.ReasonThreshold {
		t.Fatalf("warm long idle: %+v", dec)
	}
	// Unknown device is a typed error.
	if err := eng.Decide([]byte("nope"), 0, &dec); !errors.Is(err, scrubd.ErrUnknownDevice) {
		t.Fatalf("unknown device: %v", err)
	}
}

// TestQueryHotPathZeroAllocs pins the query hot path — parse, decide,
// encode — at zero allocations steady-state, for both the warming and
// the AR-fitted branches.
func TestQueryHotPathZeroAllocs(t *testing.T) {
	recs, last := genRecords(11, 4, 40)
	cfg := scrubd.Config{Shards: 2, MinGaps: 8, RefitEvery: 8}
	eng := scrubd.NewEngine(cfg)
	if _, err := eng.IngestBatch(recs); err != nil {
		t.Fatal(err)
	}
	eng.ApplyQueued()

	query := fmt.Sprintf("dev=d0000&now_us=%d", last[0]+100_000)
	var dec scrubd.Decision
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		dev, now, err := scrubd.ParseDecideQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.DecideString(dev, now, &dec); err != nil {
			t.Fatal(err)
		}
		buf = scrubd.AppendDecision(buf[:0], &dec)
	})
	if allocs != 0 {
		t.Fatalf("query hot path allocates %.1f/op, want 0", allocs)
	}

	devB := []byte("d0001")
	allocs = testing.AllocsPerRun(1000, func() {
		if err := eng.Decide(devB, last[1]+700_000, &dec); err != nil {
			t.Fatal(err)
		}
		buf = scrubd.AppendDecision(buf[:0], &dec)
	})
	if allocs != 0 {
		t.Fatalf("Decide([]byte) hot path allocates %.1f/op, want 0", allocs)
	}
}

// TestIngestSteadyStateZeroAllocs pins the apply path: feeding more
// records for existing devices allocates nothing once the table and
// queues are warm.
func TestIngestSteadyStateZeroAllocs(t *testing.T) {
	eng := scrubd.NewEngine(scrubd.Config{Shards: 2, MinGaps: 4, RefitEvery: 8})
	devs := [][]byte{[]byte("sda"), []byte("sdb"), []byte("sdc")}
	recs := make([]scrubd.Record, len(devs))
	at := int64(0)
	feed := func() {
		at += 50_000
		for i, d := range devs {
			recs[i] = scrubd.Record{Dev: d, AtUs: at + int64(i), Bytes: 4096}
		}
		if _, err := eng.IngestBatch(recs); err != nil {
			t.Fatal(err)
		}
		eng.ApplyQueued()
	}
	for i := 0; i < 64; i++ {
		feed() // warm: create devices, size pools, reach steady refits
	}
	if allocs := testing.AllocsPerRun(500, feed); allocs != 0 {
		t.Fatalf("ingest steady state allocates %.1f/op, want 0", allocs)
	}
}

// TestConcurrentFeedDecide exercises the started engine under
// concurrent feeders, deciders and snapshotters; run under -race this
// is the data-race battery. Accounting must still be exact.
func TestConcurrentFeedDecide(t *testing.T) {
	const feeders, perFeeder, perDev = 4, 200, 10
	eng := scrubd.NewEngine(scrubd.Config{Shards: 4, QueueCap: 256, MinGaps: 4, RefitEvery: 8})
	eng.Start()

	var wg sync.WaitGroup
	errc := make(chan error, feeders+3)
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			batch := make([]scrubd.Record, 0, perDev)
			for d := 0; d < perFeeder; d++ {
				name := []byte(fmt.Sprintf("f%d-d%03d", f, d))
				batch = batch[:0]
				for j := 0; j < perDev; j++ {
					batch = append(batch, scrubd.Record{Dev: name, AtUs: int64(1 + j*10_000), Bytes: 1})
				}
				rest := batch
				for len(rest) > 0 {
					n, err := eng.IngestBatch(rest)
					rest = rest[n:]
					if err != nil && !errors.Is(err, scrubd.ErrBackpressure) {
						errc <- err
						return
					}
				}
			}
		}(f)
	}
	stop := make(chan struct{})
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			var dec scrubd.Decision
			rng := rand.New(rand.NewSource(int64(q)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				name := []byte(fmt.Sprintf("f%d-d%03d", rng.Intn(feeders), rng.Intn(perFeeder)))
				if err := eng.Decide(name, 0, &dec); err != nil && !errors.Is(err, scrubd.ErrUnknownDevice) {
					errc <- err
					return
				}
			}
		}(q)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.ObsSnapshot(); err != nil {
				errc <- err
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.Sync(ctx); err != nil {
		t.Fatalf("sync: %v", err)
	}
	close(stop)
	<-done
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	eng.Close()

	snap, err := eng.ObsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var records int64
	for _, c := range snap.Counters {
		if c.Name == "scrubd.ingest.records" {
			records = c.Value
		}
	}
	if want := int64(feeders * perFeeder * perDev); records != want {
		t.Fatalf("ingest.records = %d, want %d", records, want)
	}
	if eng.Devices() != feeders*perFeeder {
		t.Fatalf("devices = %d, want %d", eng.Devices(), feeders*perFeeder)
	}
}

// TestSyncContext pins Sync's cancellation path: with no appliers
// running and records pending, Sync must return the context error.
func TestSyncContext(t *testing.T) {
	eng := scrubd.NewEngine(scrubd.Config{Shards: 1})
	if _, err := eng.IngestBatch([]scrubd.Record{{Dev: []byte("sda"), AtUs: 1}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.Sync(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("sync = %v, want context.Canceled", err)
	}
	eng.ApplyQueued()
	if err := eng.Sync(context.Background()); err != nil {
		t.Fatalf("sync after drain: %v", err)
	}
}
