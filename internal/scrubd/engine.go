package scrubd

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arima"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Sentinel errors of the engine API. The HTTP layer maps them onto
// typed 4xx responses; direct embedders branch on them with errors.Is.
var (
	// ErrBackpressure reports a full feed queue: the batch was partially
	// accepted (see IngestBatch's count) and the caller should retry the
	// rest after a backoff. The bounded queue never grows to absorb a
	// slow consumer.
	ErrBackpressure = errors.New("scrubd: feed queue full")
	// ErrUnknownDevice reports a decision query for a device that has
	// never appeared in the feed.
	ErrUnknownDevice = errors.New("scrubd: unknown device")
	// ErrTooManyDevices reports that the device table reached
	// Config.MaxDevices; records for new devices are rejected rather
	// than growing memory without bound.
	ErrTooManyDevices = errors.New("scrubd: device table full")
	// ErrClosed reports ingestion into a closed engine.
	ErrClosed = errors.New("scrubd: engine closed")
)

// Config parameterizes an Engine. The zero value selects the defaults
// documented per field.
type Config struct {
	// Shards is the number of device shards; feed application and
	// decision queries for one device serialize on its shard. Default 8.
	Shards int
	// QueueCap bounds the per-shard feed queue, in records. Default 65536.
	QueueCap int
	// WaitThreshold is the Waiting policy's t: once a device has been
	// idle this long, scrub. Default 500ms.
	WaitThreshold time.Duration
	// ARThreshold is the AR policy's c: when the fitted model predicts
	// an idle interval this long, scrub without waiting out the
	// threshold. Default 2s.
	ARThreshold time.Duration
	// MaxOrder bounds the AIC-selected AR order. Default 8.
	MaxOrder int
	// Decay is the per-observation forgetting factor of the online AR
	// fit. Default 0.999.
	Decay float64
	// RefitEvery is the number of observed gaps between AR refits of one
	// device. Default 64.
	RefitEvery int
	// MinGaps is the warmup: below this many observed gaps a device is
	// served by the pure Waiting rule. Default 16.
	MinGaps int
	// ScrubRate converts predicted remaining idle time into a request
	// size, in bytes per second of scrubbing the device sustains.
	// Default 64 MiB/s.
	ScrubRate int64
	// MinReqBytes / MaxReqBytes clamp issued request sizes.
	// Defaults 64 KiB / 8 MiB.
	MinReqBytes int64
	MaxReqBytes int64
	// MaxDevices caps the device table across all shards. Default 1<<20.
	MaxDevices int64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shards > 1024 {
		c.Shards = 1024
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1 << 16
	}
	if c.WaitThreshold <= 0 {
		c.WaitThreshold = 500 * time.Millisecond
	}
	if c.ARThreshold <= 0 {
		c.ARThreshold = 2 * time.Second
	}
	if c.MaxOrder <= 0 {
		c.MaxOrder = 8
	}
	if c.Decay <= 0 {
		c.Decay = 0.999
	}
	if c.RefitEvery <= 0 {
		c.RefitEvery = 64
	}
	if c.MinGaps <= 0 {
		c.MinGaps = 16
	}
	if c.ScrubRate <= 0 {
		c.ScrubRate = 64 << 20
	}
	if c.MinReqBytes <= 0 {
		c.MinReqBytes = 64 << 10
	}
	if c.MaxReqBytes <= 0 {
		c.MaxReqBytes = 8 << 20
	}
	if c.MaxReqBytes < c.MinReqBytes {
		c.MaxReqBytes = c.MinReqBytes
	}
	if c.MaxDevices <= 0 {
		c.MaxDevices = 1 << 20
	}
	return c
}

// Record is one per-device I/O feed record: a foreground request
// arrival at AtUs microseconds (device-local clock, strictly increasing
// per device) moving Bytes bytes. Dev is borrowed from the caller's
// buffer; the engine copies it only when it first creates the device.
type Record struct {
	Dev   []byte
	AtUs  int64
	Bytes int64
}

// qrec is a queued, device-resolved feed record.
type qrec struct {
	dev   *device
	atUs  int64
	bytes int64
}

// device is one device's online state. All access is serialized by the
// owning shard's lock.
type device struct {
	name     string
	lastAtUs int64 // most recent arrival, µs; 0 before the first record
	gaps     int64 // inter-arrival gaps observed
	ar       *arima.OnlineAR
	idle     *stats.OnlineIdle
}

// shard owns a stripe of the device table, its slice of the bounded
// feed queue, and a private obs registry (registries are
// single-threaded; the shard lock is what serializes them).
type shard struct {
	mu       sync.Mutex
	cond     *sync.Cond // queue became non-empty, or stopping
	stopping bool

	devices map[string]*device
	q       []qrec // ring buffer
	head    int
	count   int

	reg *obs.Registry

	// Instruments, resolved once at construction (obsguard: no registry
	// lookups on the hot path).
	insRecords   *obs.Counter
	insStale     *obs.Counter
	insGaps      *obs.Counter
	insRefits    *obs.Counter
	insDevNew    *obs.Counter
	insFireThr   *obs.Counter
	insFirePred  *obs.Counter
	insHoldWarm  *obs.Counter
	insHoldAR    *obs.Counter
	hIdleAtQuery *obs.Histogram
	hPredGap     *obs.Histogram
}

func newShard(queueCap int) *shard {
	s := &shard{
		devices: make(map[string]*device),
		q:       make([]qrec, queueCap),
		reg:     obs.New(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.insRecords = s.reg.Counter("scrubd.ingest.records")
	s.insStale = s.reg.Counter("scrubd.ingest.stale_dropped")
	s.insGaps = s.reg.Counter("scrubd.ingest.gaps")
	s.insRefits = s.reg.Counter("scrubd.ingest.refits")
	// Deliberately no gauges here: a gauge's max depends on when it was
	// sampled (queue depth, shard occupancy), which would break the
	// byte-identical-snapshot guarantee across batch splits and shard
	// counts. Everything in the shard registry is record-granular.
	s.insDevNew = s.reg.Counter("scrubd.devices.created")
	s.insFireThr = s.reg.Counter("scrubd.decide.fire.threshold")
	s.insFirePred = s.reg.Counter("scrubd.decide.fire.predicted")
	s.insHoldWarm = s.reg.Counter("scrubd.decide.hold.warming")
	s.insHoldAR = s.reg.Counter("scrubd.decide.hold.ar")
	s.hIdleAtQuery = s.reg.Histogram("scrubd.decide.idle_at_query")
	s.hPredGap = s.reg.Histogram("scrubd.decide.predicted_gap")
	return s
}

// Engine is the scrub-decision service core: sharded device table,
// bounded feed queues, online statistics, deterministic decisions.
type Engine struct {
	cfg     Config
	shards  []*shard
	devices atomic.Int64 // across shards, vs cfg.MaxDevices
	closed  atomic.Bool
	started atomic.Bool
	wg      sync.WaitGroup

	// pending counts accepted-but-unapplied records for Sync. Guarded by
	// pendMu; pendCond broadcasts when it reaches zero.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pending  int64
}

// NewEngine builds an engine. Appliers do not run until Start; until
// then queued records are applied manually with ApplyQueued (the
// deterministic single-threaded mode the replay tests use).
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range e.shards {
		e.shards[i] = newShard(cfg.QueueCap)
	}
	e.pendCond = sync.NewCond(&e.pendMu)
	return e
}

// Config returns the engine's effective (default-filled) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Start launches one applier goroutine per shard. Idempotent.
func (e *Engine) Start() {
	if e.closed.Load() || !e.started.CompareAndSwap(false, true) {
		return
	}
	for _, s := range e.shards {
		e.wg.Add(1)
		go e.applier(s) //scrublint:allow detorder daemon boundary: appliers run on wall-clock ingest, not the virtual clock
	}
}

// Close stops ingestion, drains the queues through the appliers (when
// started) and waits for them to exit. Decisions remain answerable
// after Close; further feeding returns ErrClosed.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	for _, s := range e.shards {
		s.mu.Lock()
		s.stopping = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	e.wg.Wait()
	// Whatever the appliers did not drain (engine never started, or
	// records raced in before the stop flag) is applied here so Sync
	// callers are released and state reflects every accepted record.
	e.ApplyQueued()
}

// shardIndex hashes a device name onto a shard (FNV-1a 32-bit).
//
//scrub:hotpath
func shardIndex(dev []byte, n int) int {
	h := uint32(2166136261)
	for _, b := range dev {
		h = (h ^ uint32(b)) * 16777619
	}
	return int(h % uint32(n))
}

// shardIndexString is shardIndex over a string (same hash, no
// conversion allocation).
//
//scrub:hotpath
func shardIndexString(dev string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(dev); i++ {
		h = (h ^ uint32(dev[i])) * 16777619
	}
	return int(h % uint32(n))
}

// pendAdd moves the accepted-but-unapplied record count by delta,
// waking Sync waiters when it reaches zero.
func (e *Engine) pendAdd(delta int64) {
	e.pendMu.Lock()
	e.pending += delta
	if e.pending == 0 {
		e.pendCond.Broadcast()
	}
	e.pendMu.Unlock()
}

// IngestBatch validates, resolves and enqueues a batch of feed records,
// returning how many were accepted. On a full shard queue it stops and
// returns ErrBackpressure: records already enqueued stay accepted
// (application is per-device idempotent — a retried record is dropped
// as stale by the monotonic-timestamp check), the rest are the caller's
// to retry. Record order is preserved per device.
func (e *Engine) IngestBatch(recs []Record) (int, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	// Count first so Sync can never observe "drained" between a record
	// becoming visible and its accounting.
	e.pendAdd(int64(len(recs)))
	accepted := 0
	var err error
	nsh := len(e.shards)
	// One pass per shard keeps each shard lock acquired once per batch
	// without allocating per-shard sublists.
	for si := 0; si < nsh && err == nil; si++ {
		s := e.shards[si]
		locked := false
		for i := range recs {
			r := &recs[i]
			if len(r.Dev) == 0 || r.AtUs <= 0 || r.Bytes < 0 {
				err = errRecordInvalid
				break
			}
			if shardIndex(r.Dev, nsh) != si {
				continue
			}
			if !locked {
				s.mu.Lock()
				locked = true
			}
			if s.count == len(s.q) {
				err = ErrBackpressure
				break
			}
			d := s.devices[string(r.Dev)]
			if d == nil {
				if e.devices.Load() >= e.cfg.MaxDevices {
					err = ErrTooManyDevices
					break
				}
				d = &device{
					name: string(r.Dev),
					ar:   arima.NewOnlineAR(e.cfg.MaxOrder, e.cfg.Decay),
					idle: stats.NewOnlineIdle(nil),
				}
				s.devices[d.name] = d
				e.devices.Add(1)
				s.insDevNew.Inc()
			}
			s.q[(s.head+s.count)%len(s.q)] = qrec{dev: d, atUs: r.AtUs, bytes: r.Bytes}
			s.count++
			accepted++
		}
		if locked {
			s.cond.Signal()
			s.mu.Unlock()
		}
	}
	e.pendAdd(int64(accepted - len(recs)))
	return accepted, err
}

// errRecordInvalid rejects records that bypass the HTTP decoders with
// an empty device name or non-positive timestamp.
var errRecordInvalid = errors.New("scrubd: invalid feed record")

// applyChunk bounds how many records an applier folds in per lock hold,
// so decision queries interleave with heavy feeding.
const applyChunk = 256

// applier drains one shard's queue until Close.
func (e *Engine) applier(s *shard) {
	defer e.wg.Done()
	for {
		s.mu.Lock()
		for s.count == 0 && !s.stopping {
			s.cond.Wait()
		}
		if s.count == 0 {
			s.mu.Unlock()
			return
		}
		n := e.applyLocked(s, applyChunk)
		s.mu.Unlock()
		e.pendAdd(int64(-n))
	}
}

// ApplyQueued synchronously drains every shard queue on the caller's
// goroutine and returns the number of records applied. This is the
// deterministic manual mode: tests (and single-threaded replays) use
// NewEngine + IngestBatch + ApplyQueued and never start the appliers.
func (e *Engine) ApplyQueued() int {
	total := 0
	for _, s := range e.shards {
		s.mu.Lock()
		for s.count > 0 {
			total += e.applyLocked(s, s.count)
		}
		s.mu.Unlock()
	}
	if total > 0 {
		e.pendAdd(int64(-total))
	}
	return total
}

// applyLocked folds up to max queued records of s into device state.
// Caller holds s.mu.
//
//scrub:hotpath
func (e *Engine) applyLocked(s *shard, max int) int {
	n := s.count
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		r := &s.q[s.head]
		s.head++
		if s.head == len(s.q) {
			s.head = 0
		}
		s.count--
		d := r.dev
		r.dev = nil // no stale device pointer keeps a deleted device alive
		s.insRecords.Inc()
		if d.lastAtUs == 0 {
			d.lastAtUs = r.atUs
			continue
		}
		if r.atUs <= d.lastAtUs {
			// Replayed or reordered record: the per-device clock only
			// moves forward, which is also what makes backpressure
			// retries of a partially accepted batch idempotent.
			s.insStale.Inc()
			continue
		}
		gapUs := r.atUs - d.lastAtUs
		d.lastAtUs = r.atUs
		d.gaps++
		d.idle.Observe(time.Duration(gapUs) * time.Microsecond)
		d.ar.Observe(float64(gapUs) / 1e6)
		s.insGaps.Inc()
		if d.gaps%int64(e.cfg.RefitEvery) == 0 {
			d.ar.Refit()
			s.insRefits.Inc()
		}
	}
	return n
}

// waitDrained blocks until every accepted record has been applied.
func (e *Engine) waitDrained() {
	e.pendMu.Lock()
	for e.pending != 0 {
		e.pendCond.Wait()
	}
	e.pendMu.Unlock()
}

// Sync blocks until the feed queues are drained or ctx is cancelled.
// With the appliers running this bounds feed-to-decision staleness;
// in manual mode call ApplyQueued instead.
func (e *Engine) Sync(ctx context.Context) error {
	done := make(chan struct{})
	go func() { //scrublint:allow detorder daemon boundary: Sync bridges caller wall-clock ctx to queue drain
		e.waitDrained()
		close(done)
	}()
	//scrublint:allow detorder daemon boundary: ctx cancellation is inherently wall-clock
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Pending returns the number of accepted-but-unapplied records.
func (e *Engine) Pending() int64 {
	e.pendMu.Lock()
	defer e.pendMu.Unlock()
	return e.pending
}

// Devices returns the device-table size.
func (e *Engine) Devices() int64 { return e.devices.Load() }

// ObsSnapshot merges the per-shard registries into one deterministic
// snapshot: the same feed produces byte-identical snapshots at any
// shard count or batch split, because every instrument is
// record-granular and merging is integer-exact.
func (e *Engine) ObsSnapshot() (obs.Snapshot, error) {
	snaps := make([]obs.Snapshot, len(e.shards))
	for i, s := range e.shards {
		s.mu.Lock()
		snaps[i] = s.reg.Snapshot()
		s.mu.Unlock()
	}
	return obs.MergeSnapshots(snaps...)
}
