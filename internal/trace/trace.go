// Package trace provides the block I/O trace substrate: the record model,
// CSV encoding/decoding compatible with simple SNIA-style exports, and a
// synthetic trace generator calibrated per named disk of the paper's trace
// collection (Tables I and II). The real MSR-Cambridge / HP Cello / TPC-C
// traces are not redistributable, so each named disk is substituted by a
// generator reproducing the statistics the paper's analysis consumes:
// request volume, idle-interval mean and CoV, heavy idle-time tails with
// decreasing hazard rates, autocorrelated gaps, and periodic (diurnal)
// activity. See DESIGN.md for the substitution argument.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// Record is one trace request.
type Record struct {
	// Arrival is the request submission time from trace start.
	Arrival time.Duration
	// LBA is the starting sector.
	LBA int64
	// Sectors is the length in sectors.
	Sectors int64
	// Write marks a write request.
	Write bool
}

// Trace is a named sequence of records in non-decreasing arrival order.
type Trace struct {
	Name string
	// DiskSectors is the address space the records were generated for.
	DiskSectors int64
	Records     []Record
}

// Duration returns the arrival time of the last record.
func (t *Trace) Duration() time.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].Arrival
}

// Arrivals returns the arrival-time series.
func (t *Trace) Arrivals() []time.Duration {
	out := make([]time.Duration, len(t.Records))
	for i, r := range t.Records {
		out[i] = r.Arrival
	}
	return out
}

// HourlyCounts buckets request arrivals into per-hour counts (Fig. 8's
// request-activity series).
func (t *Trace) HourlyCounts() []float64 {
	if len(t.Records) == 0 {
		return nil
	}
	hours := int(t.Duration()/time.Hour) + 1
	counts := make([]float64, hours)
	for _, r := range t.Records {
		counts[r.Arrival/time.Hour]++
	}
	return counts
}

// header is the CSV header written and expected by this package.
const header = "arrival_us,op,lba,sectors"

// Write encodes the trace as CSV.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace: %s disk_sectors: %d\n%s\n", t.Name, t.DiskSectors, header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, r := range t.Records {
		op := byte('R')
		if r.Write {
			op = 'W'
		}
		line := strconv.FormatInt(int64(r.Arrival/time.Microsecond), 10) +
			"," + string(op) +
			"," + strconv.FormatInt(r.LBA, 10) +
			"," + strconv.FormatInt(r.Sectors, 10) + "\n"
		if _, err := bw.WriteString(line); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ErrBadFormat reports a malformed trace file.
var ErrBadFormat = errors.New("trace: bad format")

// Read decodes a CSV trace written by Write. Comment lines (#) are
// tolerated anywhere; the column header is required once.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{}
	sawHeader := false
	lineNo := 0
	var prev time.Duration
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Optional metadata comment.
			if name, sectors, ok := parseMeta(line); ok {
				t.Name = name
				t.DiskSectors = sectors
			}
			continue
		}
		if !sawHeader {
			if line != header {
				return nil, fmt.Errorf("%w: line %d: expected header %q, got %q", ErrBadFormat, lineNo, header, line)
			}
			sawHeader = true
			continue
		}
		rec, err := parseRecord(line)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
		}
		if rec.Arrival < prev {
			return nil, fmt.Errorf("%w: line %d: arrival went backwards", ErrBadFormat, lineNo)
		}
		prev = rec.Arrival
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("%w: missing header", ErrBadFormat)
	}
	return t, nil
}

func parseMeta(line string) (name string, sectors int64, ok bool) {
	fields := strings.Fields(strings.TrimPrefix(line, "#"))
	for i := 0; i+1 < len(fields); i++ {
		switch fields[i] {
		case "trace:":
			name = fields[i+1]
		case "disk_sectors:":
			if v, err := strconv.ParseInt(fields[i+1], 10, 64); err == nil {
				sectors = v
			}
		}
	}
	return name, sectors, name != "" || sectors != 0
}

func parseRecord(line string) (Record, error) {
	var rec Record
	parts := strings.Split(line, ",")
	if len(parts) != 4 {
		return rec, fmt.Errorf("want 4 fields, got %d", len(parts))
	}
	us, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("arrival: %v", err)
	}
	if us < 0 || us > math.MaxInt64/int64(time.Microsecond) {
		return rec, fmt.Errorf("arrival %dus out of range", us)
	}
	rec.Arrival = time.Duration(us) * time.Microsecond
	switch parts[1] {
	case "R", "r":
		rec.Write = false
	case "W", "w":
		rec.Write = true
	default:
		return rec, fmt.Errorf("op %q", parts[1])
	}
	if rec.LBA, err = strconv.ParseInt(parts[2], 10, 64); err != nil {
		return rec, fmt.Errorf("lba: %v", err)
	}
	if rec.Sectors, err = strconv.ParseInt(parts[3], 10, 64); err != nil {
		return rec, fmt.Errorf("sectors: %v", err)
	}
	if rec.LBA < 0 || rec.Sectors <= 0 || rec.Sectors > math.MaxInt64-rec.LBA {
		return rec, fmt.Errorf("invalid extent [%d,+%d)", rec.LBA, rec.Sectors)
	}
	return rec, nil
}
