package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"
)

// Format identifies a trace file encoding.
type Format int

const (
	// FormatUnknown means sniffing failed.
	FormatUnknown Format = iota
	// FormatNative is this package's own CSV (arrival_us,op,lba,sectors).
	FormatNative
	// FormatMSR is the SNIA MSR-Cambridge 7-column CSV.
	FormatMSR
	// FormatCello is the HP Cello/SRT whitespace text layout.
	FormatCello
	// FormatBlktrace is the Linux blktrace binary stream.
	FormatBlktrace
	// FormatCache is this package's columnar cache (SCRBTRC1).
	FormatCache
)

// String names the format for reports and flag values.
func (f Format) String() string {
	switch f {
	case FormatNative:
		return "native"
	case FormatMSR:
		return "msr"
	case FormatCello:
		return "cello"
	case FormatBlktrace:
		return "blktrace"
	case FormatCache:
		return "cache"
	default:
		return "unknown"
	}
}

// ParseFormat maps a flag value ("auto", "native", "msr", "cello",
// "blktrace", "cache") to a Format; "auto" and "" return FormatUnknown,
// which Open treats as "sniff it".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "auto":
		return FormatUnknown, nil
	case "native":
		return FormatNative, nil
	case "msr":
		return FormatMSR, nil
	case "cello":
		return FormatCello, nil
	case "blktrace":
		return FormatBlktrace, nil
	case "cache":
		return FormatCache, nil
	default:
		return FormatUnknown, fmt.Errorf("trace: unknown format %q", s)
	}
}

// DetectFormat sniffs a trace file's encoding from its leading bytes:
// the cache and blktrace magics identify the binary formats; for text,
// the first content line's shape separates native CSV (its fixed header
// or metadata comment), MSR-Cambridge CSV (comma fields) and Cello/SRT
// (whitespace fields).
func DetectFormat(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return FormatUnknown, err
	}
	defer f.Close()
	head := make([]byte, 4096)
	n, err := io.ReadFull(f, head)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return FormatUnknown, err
	}
	return sniff(head[:n]), nil
}

// sniff classifies a file prefix. Returns FormatUnknown when nothing
// matches.
func sniff(head []byte) Format {
	if bytes.HasPrefix(head, []byte(cacheMagic)) {
		return FormatCache
	}
	if len(head) >= 4 {
		le := binary.LittleEndian.Uint32(head[0:4])
		be := binary.BigEndian.Uint32(head[0:4])
		if le&blkMagicMask == blkMagicBase || be&blkMagicMask == blkMagicBase {
			return FormatBlktrace
		}
	}
	// Text: find the first non-blank line (tolerating a BOM).
	rest := bytes.TrimPrefix(head, utf8BOM)
	for len(rest) > 0 {
		line := rest
		if i := bytes.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			rest = nil
		}
		line = trimBytes(bytes.TrimSuffix(line, []byte("\r")))
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			// Comments are format-neutral, except the native metadata line.
			if _, _, ok := parseMeta(string(line)); ok {
				return FormatNative
			}
			continue
		}
		if string(line) == header {
			return FormatNative
		}
		if fields := bytes.Split(line, []byte(",")); len(fields) >= 6 {
			return FormatMSR
		}
		if fields := splitSpace(line, nil); len(fields) >= 5 {
			return FormatCello
		}
		return FormatUnknown
	}
	return FormatUnknown
}

// Open opens a trace file of any supported encoding as a resettable,
// closable Source. With FormatUnknown the encoding is sniffed from the
// file's leading bytes. Close the source with CloseSource.
func Open(path string, format Format) (Source, error) {
	if format == FormatUnknown {
		var err error
		if format, err = DetectFormat(path); err != nil {
			return nil, err
		}
		if format == FormatUnknown {
			return nil, fmt.Errorf("%w: %s: unrecognized trace encoding", ErrBadFormat, path)
		}
	}
	switch format {
	case FormatNative:
		return OpenNative(path)
	case FormatMSR:
		return OpenMSR(path, MSROptions{DiskNumber: -1})
	case FormatCello:
		return OpenCello(path, CelloOptions{Device: -1})
	case FormatBlktrace:
		return OpenBlktrace(path, BlktraceOptions{})
	case FormatCache:
		return OpenCache(path)
	default:
		return nil, fmt.Errorf("trace: unsupported format %v", format)
	}
}

// CloseSource closes a source's underlying file when it has one; plain
// in-memory sources are a no-op.
func CloseSource(src Source) error {
	if c, ok := src.(sourceCloser); ok {
		return c.Close()
	}
	return nil
}

// NativeSource streams this package's own CSV in constant memory — the
// Source counterpart of Read, with the same strictness: the column
// header is required, arrivals must be non-decreasing (no clamping; the
// writer never produces inversions), and metadata comments set the name
// and address space.
type NativeSource struct {
	r      io.Reader
	lr     *lineReader
	closer io.Closer
	fields [][]byte

	name        string
	diskSectors int64
	sawHeader   bool
	prev        time.Duration
	maxEnd      int64
	sticky      error
}

// NewNativeSource wraps a reader as a streaming native-CSV decoder.
// Reset requires the reader to implement io.Seeker.
func NewNativeSource(r io.Reader) *NativeSource {
	return &NativeSource{r: r, lr: newLineReader(r)}
}

// OpenNative opens a native-CSV trace file as a resettable, closable
// source.
func OpenNative(path string) (*NativeSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src := NewNativeSource(f)
	src.closer = f
	src.name = path
	return src, nil
}

// Next implements Source.
//
//scrub:hotpath
func (ns *NativeSource) Next(rec *Record) error {
	if ns.sticky != nil {
		return ns.sticky
	}
	for {
		line, err := ns.lr.next()
		if err == io.EOF {
			if !ns.sawHeader {
				ns.sticky = ns.errf("missing header")
				return ns.sticky
			}
			return io.EOF
		}
		if err != nil {
			ns.sticky = err
			return err
		}
		line = trimBytes(line)
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			ns.meta(line)
			continue
		}
		if !ns.sawHeader {
			if string(line) != header {
				ns.sticky = ns.errf("expected header %q, got %q", header, line)
				return ns.sticky
			}
			ns.sawHeader = true
			continue
		}
		if err := ns.parseLine(line, rec); err != nil {
			ns.sticky = err
			return err
		}
		return nil
	}
}

// meta parses an optional "# trace: NAME disk_sectors: N" comment.
func (ns *NativeSource) meta(line []byte) {
	if name, sectors, ok := parseMeta(string(line)); ok {
		if name != "" {
			ns.name = name
		}
		if sectors > 0 {
			ns.diskSectors = sectors
		}
	}
}

// parseLine decodes one arrival_us,op,lba,sectors line into rec.
func (ns *NativeSource) parseLine(line []byte, rec *Record) error {
	ns.fields = splitByte(line, ',', ns.fields)
	if len(ns.fields) != 4 {
		return ns.errf("want 4 fields, got %d", len(ns.fields))
	}
	us, okv := parseIntBytes(ns.fields[0])
	if !okv || us < 0 || us > int64(1<<63-1)/int64(time.Microsecond) {
		return ns.errf("arrival %q", ns.fields[0])
	}
	arrival := time.Duration(us) * time.Microsecond
	if arrival < ns.prev {
		return ns.errf("arrival went backwards")
	}
	var write bool
	switch op := ns.fields[1]; {
	case equalFoldASCII(op, "r"):
		write = false
	case equalFoldASCII(op, "w"):
		write = true
	default:
		return ns.errf("op %q", ns.fields[1])
	}
	lba, okv := parseIntBytes(ns.fields[2])
	if !okv {
		return ns.errf("lba %q", ns.fields[2])
	}
	sectors, okv := parseIntBytes(ns.fields[3])
	if !okv {
		return ns.errf("sectors %q", ns.fields[3])
	}
	if lba < 0 || sectors <= 0 || sectors > int64(1<<63-1)-lba {
		return ns.errf("invalid extent [%d,+%d)", lba, sectors)
	}
	ns.prev = arrival
	rec.Arrival = arrival
	rec.LBA = lba
	rec.Sectors = sectors
	rec.Write = write
	if end := lba + sectors; end > ns.maxEnd {
		ns.maxEnd = end
	}
	return nil
}

// errf builds a line-annotated ErrBadFormat.
func (ns *NativeSource) errf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrBadFormat, ns.lr.lineNo, fmt.Sprintf(format, args...))
}

// Reset implements Source.
func (ns *NativeSource) Reset() error {
	sk, ok := ns.r.(io.Seeker)
	if !ok {
		return ErrNotResettable
	}
	if _, err := sk.Seek(0, io.SeekStart); err != nil {
		return err
	}
	ns.lr.reset(ns.r)
	ns.sawHeader, ns.prev, ns.maxEnd, ns.sticky = false, 0, 0, nil
	return nil
}

// DiskSectors implements Source: the metadata value when present, else
// the largest extent end seen so far.
func (ns *NativeSource) DiskSectors() int64 {
	if ns.diskSectors > 0 {
		return ns.diskSectors
	}
	return ns.maxEnd
}

// Name implements Source.
func (ns *NativeSource) Name() string { return ns.name }

// Close closes the underlying file when the source was opened from a
// path; otherwise it is a no-op.
func (ns *NativeSource) Close() error {
	if ns.closer != nil {
		return ns.closer.Close()
	}
	return nil
}
