package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// This file decodes the blktrace binary format — the Linux kernel's
// per-CPU block-layer event stream (blktrace(8)), the capture tool
// behind modern re-runs of the paper's methodology. Each event is a
// 48-byte fixed header followed by pdu_len bytes of payload:
//
//	u32 magic      0x65617400 | version (0x07)
//	u32 sequence
//	u64 time       nanoseconds
//	u64 sector
//	u32 bytes
//	u32 action     low 16 bits: action id; high 16 bits: category mask
//	u32 pid
//	u32 device     (major << 20) | minor
//	u32 cpu
//	u16 error
//	u16 pdu_len
//
// Byte order is the capturing host's; it is detected from the first
// record's magic and enforced for the rest of the file. Only queue
// events (action id Q, the submission instant the paper's replays need)
// with a non-zero byte count become records; everything else — issues,
// completions, plug/unplug bookkeeping, notify messages — is skipped.
// Per-CPU capture means a merged file can carry small time inversions;
// like the text decoders, they are clamped.

const (
	blkMagicBase = 0x65617400 // "\0tae" | version nibble
	blkMagicMask = 0xffffff00

	blkHeaderLen = 48

	blkTAQueue  = 0x01    // __BLK_TA_QUEUE
	blkTCNotify = 1 << 10 // BLK_TC_NOTIFY category bit
	blkTCWrite  = 1 << 1  // BLK_TC_WRITE category bit
	blkTCShift  = 16

	// blkMaxIOBytes rejects absurd per-request sizes: no real block
	// request reaches 1 GB; anything larger is corruption.
	blkMaxIOBytes = 1 << 30
)

// BlktraceOptions filters a blktrace binary decode.
type BlktraceOptions struct {
	// Name labels the resulting trace.
	Name string
	// Device keeps only events of this device number ((major<<20)|minor);
	// 0 keeps all.
	Device uint32
	// MaxRecords caps the decode (0 = unlimited).
	MaxRecords int
}

// BlktraceSource streams queue events out of a blktrace binary file in
// constant memory.
type BlktraceSource struct {
	opts   BlktraceOptions
	r      io.Reader
	br     *bufio.Reader
	closer io.Closer

	order    binary.ByteOrder
	base     uint64
	haveBase bool
	prev     time.Duration
	maxEnd   int64
	n        int
	recNo    int64
	sticky   error
	hdr      [blkHeaderLen]byte
}

// NewBlktraceSource wraps a reader as a streaming blktrace decoder.
// Reset requires the reader to implement io.Seeker.
func NewBlktraceSource(r io.Reader, opts BlktraceOptions) *BlktraceSource {
	return &BlktraceSource{opts: opts, r: r, br: bufio.NewReaderSize(r, 1<<16)}
}

// OpenBlktrace opens a blktrace binary file as a resettable, closable
// source. The options' Name defaults to the path.
func OpenBlktrace(path string, opts BlktraceOptions) (*BlktraceSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if opts.Name == "" {
		opts.Name = path
	}
	src := NewBlktraceSource(f, opts)
	src.closer = f
	return src, nil
}

// Next implements Source.
//
//scrub:hotpath
func (b *BlktraceSource) Next(rec *Record) error {
	if b.sticky != nil {
		return b.sticky
	}
	if b.opts.MaxRecords > 0 && b.n >= b.opts.MaxRecords {
		return io.EOF
	}
	for {
		ok, err := b.step(rec)
		if err != nil {
			if err != io.EOF {
				b.sticky = err
			}
			return err
		}
		if !ok {
			continue
		}
		b.n++
		return nil
	}
}

// step decodes one event; ok reports whether it became a record.
func (b *BlktraceSource) step(rec *Record) (ok bool, err error) {
	if _, err := io.ReadFull(b.br, b.hdr[:]); err != nil {
		if err == io.EOF {
			return false, io.EOF // clean end at a record boundary
		}
		return false, fmt.Errorf("%w: record %d: truncated header: %v", ErrBadFormat, b.recNo+1, err)
	}
	b.recNo++
	if b.order == nil {
		switch {
		case binary.LittleEndian.Uint32(b.hdr[0:4])&blkMagicMask == blkMagicBase:
			b.order = binary.LittleEndian
		case binary.BigEndian.Uint32(b.hdr[0:4])&blkMagicMask == blkMagicBase:
			b.order = binary.BigEndian
		default:
			return false, fmt.Errorf("%w: not a blktrace stream (magic % x)", ErrBadFormat, b.hdr[0:4])
		}
	}
	magic := b.order.Uint32(b.hdr[0:4])
	if magic&blkMagicMask != blkMagicBase {
		return false, fmt.Errorf("%w: record %d: bad magic %#x", ErrBadFormat, b.recNo, magic)
	}
	t := b.order.Uint64(b.hdr[8:16])
	sector := b.order.Uint64(b.hdr[16:24])
	bytes := b.order.Uint32(b.hdr[24:28])
	action := b.order.Uint32(b.hdr[28:32])
	device := b.order.Uint32(b.hdr[36:40])
	pduLen := b.order.Uint16(b.hdr[46:48])

	if pduLen > 0 {
		if _, err := b.br.Discard(int(pduLen)); err != nil {
			return false, fmt.Errorf("%w: record %d: truncated payload: %v", ErrBadFormat, b.recNo, err)
		}
	}

	cat := action >> blkTCShift
	if cat&blkTCNotify != 0 {
		return false, nil // text notify message, not I/O
	}
	if action&0xffff != blkTAQueue || bytes == 0 {
		return false, nil
	}
	if b.opts.Device != 0 && device != b.opts.Device {
		return false, nil
	}
	if bytes > blkMaxIOBytes {
		return false, fmt.Errorf("%w: record %d: implausible request of %d bytes", ErrBadFormat, b.recNo, bytes)
	}
	if sector > math.MaxInt64/2 {
		return false, fmt.Errorf("%w: record %d: sector %d out of range", ErrBadFormat, b.recNo, sector)
	}

	if !b.haveBase {
		b.base = t
		b.haveBase = true
	}
	if t < b.base {
		t = b.base // clamp pre-base inversions from per-CPU merge
	}
	span := t - b.base
	if span > math.MaxInt64 {
		return false, fmt.Errorf("%w: record %d: timestamp overflows the trace span", ErrBadFormat, b.recNo)
	}
	arrival := time.Duration(span)
	if arrival < b.prev {
		arrival = b.prev
	}
	b.prev = arrival

	lba := int64(sector)
	sectors := (int64(bytes) + 511) / 512
	rec.Arrival = arrival
	rec.LBA = lba
	rec.Sectors = sectors
	rec.Write = action&(blkTCWrite<<blkTCShift) != 0
	if end := lba + sectors; end > b.maxEnd {
		b.maxEnd = end
	}
	return true, nil
}

// Reset implements Source.
func (b *BlktraceSource) Reset() error {
	sk, ok := b.r.(io.Seeker)
	if !ok {
		return ErrNotResettable
	}
	if _, err := sk.Seek(0, io.SeekStart); err != nil {
		return err
	}
	b.br.Reset(b.r)
	b.order = nil
	b.base, b.haveBase, b.prev, b.maxEnd, b.n, b.recNo, b.sticky = 0, false, 0, 0, 0, 0, nil
	return nil
}

// DiskSectors implements Source: the largest extent end seen so far.
func (b *BlktraceSource) DiskSectors() int64 { return b.maxEnd }

// Name implements Source.
func (b *BlktraceSource) Name() string { return b.opts.Name }

// Close closes the underlying file when the source was opened from a
// path; otherwise it is a no-op.
func (b *BlktraceSource) Close() error {
	if b.closer != nil {
		return b.closer.Close()
	}
	return nil
}

// WriteBlktrace encodes a source as little-endian blktrace queue events
// (48-byte headers, no payload) — the fixture-side complement of
// BlktraceSource for tests and benchmarks.
func WriteBlktrace(w io.Writer, src Source, device uint32) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [blkHeaderLen]byte
	le := binary.LittleEndian
	var rec Record
	var seq uint32
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		seq++
		action := uint32(blkTAQueue) | (uint32(1) << blkTCShift) // BLK_TC_READ
		if rec.Write {
			action = uint32(blkTAQueue) | (blkTCWrite << blkTCShift)
		}
		le.PutUint32(hdr[0:4], blkMagicBase|0x07)
		le.PutUint32(hdr[4:8], seq)
		le.PutUint64(hdr[8:16], uint64(rec.Arrival))
		le.PutUint64(hdr[16:24], uint64(rec.LBA))
		le.PutUint32(hdr[24:28], uint32(rec.Sectors*512))
		le.PutUint32(hdr[28:32], action)
		le.PutUint32(hdr[36:40], device)
		le.PutUint16(hdr[46:48], 0)
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
