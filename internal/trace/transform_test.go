package trace

import (
	"testing"
	"time"
)

func tinyTrace() *Trace {
	return &Trace{
		Name:        "tiny",
		DiskSectors: 1000,
		Records: []Record{
			{Arrival: 0, LBA: 0, Sectors: 8},
			{Arrival: time.Second, LBA: 500, Sectors: 8, Write: true},
			{Arrival: 2 * time.Second, LBA: 990, Sectors: 10},
			{Arrival: 3 * time.Second, LBA: 100, Sectors: 8},
		},
	}
}

func TestWindow(t *testing.T) {
	tr := tinyTrace()
	w := tr.Window(time.Second, 3*time.Second)
	if len(w.Records) != 2 {
		t.Fatalf("windowed records = %d, want 2", len(w.Records))
	}
	if w.Records[0].Arrival != 0 || w.Records[1].Arrival != time.Second {
		t.Fatalf("rebase wrong: %v, %v", w.Records[0].Arrival, w.Records[1].Arrival)
	}
	if !w.Records[0].Write {
		t.Fatal("record identity lost")
	}
	if w.DiskSectors != tr.DiskSectors || w.Name != tr.Name {
		t.Fatal("metadata lost")
	}
	if empty := tr.Window(time.Hour, 2*time.Hour); len(empty.Records) != 0 {
		t.Fatal("out-of-range window non-empty")
	}
}

func TestScaleTime(t *testing.T) {
	tr := tinyTrace()
	fast, err := tr.ScaleTime(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Records[1].Arrival != 500*time.Millisecond {
		t.Fatalf("scaled arrival = %v", fast.Records[1].Arrival)
	}
	if fast.Duration() != tr.Duration()/2 {
		t.Fatalf("duration = %v", fast.Duration())
	}
	// Original untouched.
	if tr.Records[1].Arrival != time.Second {
		t.Fatal("ScaleTime mutated the source")
	}
	if _, err := tr.ScaleTime(0); err == nil {
		t.Fatal("zero factor accepted")
	}
}

func TestRemapLBA(t *testing.T) {
	tr := tinyTrace()
	small, err := tr.RemapLBA(100)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range small.Records {
		if r.LBA < 0 || r.LBA+r.Sectors > 100 {
			t.Fatalf("record %d out of target space: %+v", i, r)
		}
	}
	// Relative ordering of positions preserved.
	if !(small.Records[0].LBA < small.Records[1].LBA && small.Records[1].LBA < small.Records[2].LBA) {
		t.Fatalf("ordering lost: %+v", small.Records)
	}
	if _, err := tr.RemapLBA(0); err == nil {
		t.Fatal("zero target accepted")
	}
	// Missing DiskSectors derived from extents.
	noMeta := &Trace{Records: []Record{{LBA: 50, Sectors: 10}}}
	remapped, err := noMeta.RemapLBA(30)
	if err != nil {
		t.Fatal(err)
	}
	if r := remapped.Records[0]; r.LBA+r.Sectors > 30 {
		t.Fatalf("derived remap out of range: %+v", r)
	}
	if _, err := (&Trace{}).RemapLBA(10); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestMerge(t *testing.T) {
	a := &Trace{DiskSectors: 100, Records: []Record{
		{Arrival: 0, LBA: 1, Sectors: 1},
		{Arrival: 2 * time.Second, LBA: 2, Sectors: 1},
	}}
	b := &Trace{DiskSectors: 200, Records: []Record{
		{Arrival: time.Second, LBA: 3, Sectors: 1},
		{Arrival: 2 * time.Second, LBA: 4, Sectors: 1},
	}}
	m := Merge("ab", a, b)
	if m.Name != "ab" || m.DiskSectors != 200 || len(m.Records) != 4 {
		t.Fatalf("merge meta wrong: %+v", m)
	}
	prev := time.Duration(-1)
	for _, r := range m.Records {
		if r.Arrival < prev {
			t.Fatal("merge not time-ordered")
		}
		prev = r.Arrival
	}
	// Stable: a's same-instant record precedes b's.
	if m.Records[2].LBA != 2 || m.Records[3].LBA != 4 {
		t.Fatalf("stability lost: %+v", m.Records)
	}
	if empty := Merge("none"); len(empty.Records) != 0 {
		t.Fatal("empty merge non-empty")
	}
}
