package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// msrGolden is the decode expected from testdata/msr_golden.csv — a
// BOM-prefixed, CRLF-terminated Windows-style SNIA export.
var msrGolden = []Record{
	{Arrival: 0, LBA: 2, Sectors: 8},
	{Arrival: 1 * time.Millisecond, LBA: 16, Sectors: 1, Write: true},
	{Arrival: 2 * time.Millisecond, LBA: 0, Sectors: 8},
	{Arrival: 3 * time.Millisecond, LBA: 1, Sectors: 2},
	{Arrival: 4 * time.Millisecond, LBA: 32, Sectors: 16},
}

func TestMSRGoldenFixture(t *testing.T) {
	src, err := OpenMSR(filepath.Join("testdata", "msr_golden.csv"), MSROptions{DiskNumber: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := drain(t, src)
	if len(got) != len(msrGolden) {
		t.Fatalf("decoded %d records, want %d", len(got), len(msrGolden))
	}
	for i := range got {
		if got[i] != msrGolden[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], msrGolden[i])
		}
	}
	if src.DiskSectors() != 48 {
		t.Fatalf("DiskSectors = %d, want 48", src.DiskSectors())
	}
	// Reset replays identically.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	again := drain(t, src)
	for i := range again {
		if again[i] != msrGolden[i] {
			t.Fatalf("post-Reset record %d = %+v", i, again[i])
		}
	}
}

// TestMSRWindowsHardening pins the BOM/CRLF bugfix in isolation: the
// same logical trace with and without Windows decorations decodes to
// identical records.
func TestMSRWindowsHardening(t *testing.T) {
	plain := "100,h,0,Read,1024,4096,1\n200,h,0,Write,0,512,1\n"
	windows := "\xef\xbb\xbf100,h,0,Read,1024,4096,1\r\n200,h,0,Write,0,512,1\r\n"
	want, err := ReadMSR(strings.NewReader(plain), MSROptions{DiskNumber: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadMSR(strings.NewReader(windows), MSROptions{DiskNumber: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got.Records[i], want.Records[i])
		}
	}
	// A BOM mid-file is not magic whitespace: only the first line strips.
	midBOM := "100,h,0,Read,1024,4096,1\n\xef\xbb\xbf200,h,0,Write,0,512,1\n"
	if _, err := ReadMSR(strings.NewReader(midBOM), MSROptions{DiskNumber: -1}); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("mid-file BOM: err = %v, want ErrBadFormat", err)
	}
}

func TestMSRSourceStreamsEqualReadMSR(t *testing.T) {
	want, err := ReadMSR(strings.NewReader(msrSample), MSROptions{DiskNumber: -1})
	if err != nil {
		t.Fatal(err)
	}
	src := NewMSRSource(strings.NewReader(msrSample), MSROptions{DiskNumber: -1})
	got := drain(t, src)
	if len(got) != len(want.Records) {
		t.Fatalf("source %d records, ReadMSR %d", len(got), len(want.Records))
	}
	for i := range got {
		if got[i] != want.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	// A pipe-like reader (no io.Seeker) must refuse Reset.
	pr, pw := io.Pipe()
	pw.Close()
	if err := NewMSRSource(pr, MSROptions{}).Reset(); err != ErrNotResettable {
		t.Fatalf("pipe Reset = %v, want ErrNotResettable", err)
	}
}

func TestMSRSourceSticksOnError(t *testing.T) {
	src := NewMSRSource(strings.NewReader("100,h,0,Read,0,512,1\nbogus line\n100,h,0,Read,0,512,1\n"), MSROptions{DiskNumber: -1})
	var rec Record
	if err := src.Next(&rec); err != nil {
		t.Fatal(err)
	}
	err := src.Next(&rec)
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
	if err2 := src.Next(&rec); err2 != err {
		t.Fatalf("sticky error not preserved: %v vs %v", err2, err)
	}
}

// celloGolden is the decode expected from testdata/cello_golden.srt for
// device 3 (arrivals are float-second diffs, so compare with tolerance).
var celloGolden = []Record{
	{Arrival: 0, LBA: 2048, Sectors: 16},
	{Arrival: 20 * time.Millisecond, LBA: 4096, Sectors: 8, Write: true},
	{Arrival: 60 * time.Millisecond, LBA: 8, Sectors: 2},
}

func TestCelloGoldenFixture(t *testing.T) {
	src, err := OpenCello(filepath.Join("testdata", "cello_golden.srt"), CelloOptions{Device: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := drain(t, src)
	if len(got) != len(celloGolden) {
		t.Fatalf("decoded %d records, want %d", len(got), len(celloGolden))
	}
	for i, g := range got {
		w := celloGolden[i]
		dt := g.Arrival - w.Arrival
		if dt < -time.Microsecond || dt > time.Microsecond {
			t.Fatalf("record %d arrival %v, want %v +-1us", i, g.Arrival, w.Arrival)
		}
		if g.LBA != w.LBA || g.Sectors != w.Sectors || g.Write != w.Write {
			t.Fatalf("record %d = %+v, want %+v", i, g, w)
		}
	}
	// Device -1 sees the fourth record too.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	all, err := OpenCello(filepath.Join("testdata", "cello_golden.srt"), CelloOptions{Device: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer all.Close()
	if n := len(drain(t, all)); n != 4 {
		t.Fatalf("unfiltered records = %d, want 4", n)
	}
}

func TestCelloRejectsMalformed(t *testing.T) {
	cases := []string{
		"1.0 3 0\n",        // too few fields
		"x 3 0 512 R\n",    // bad timestamp
		"-1.0 3 0 512 R\n", // negative timestamp
		"1.0 y 0 512 R\n",  // bad device
		"1.0 3 -4 512 R\n", // negative offset
		"1.0 3 0 0 R\n",    // zero size
		"1.0 3 0 512 Q\n",  // bad direction
		"1e3 3 0 512 R\n",  // exponent notation is not SRT
	}
	for i, c := range cases {
		src := NewCelloSource(strings.NewReader(c), CelloOptions{Device: -1})
		var rec Record
		if err := src.Next(&rec); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("case %d: err = %v, want ErrBadFormat", i, err)
		}
	}
}

// blktraceGolden mirrors testdata/blktrace_golden.bin, which is a
// WriteBlktrace encoding of these records (regenerate with
// GEN_FIXTURES=1 go test -run TestGenGoldenFixtures ./internal/trace/).
var blktraceGolden = []Record{
	{Arrival: 0, LBA: 2048, Sectors: 8},
	{Arrival: 500 * time.Microsecond, LBA: 2056, Sectors: 8, Write: true},
	{Arrival: time.Millisecond, LBA: 0, Sectors: 32},
	{Arrival: 3 * time.Millisecond, LBA: 9999, Sectors: 1, Write: true},
}

func TestGenGoldenFixtures(t *testing.T) {
	if os.Getenv("GEN_FIXTURES") == "" {
		t.Skip("set GEN_FIXTURES=1 to regenerate testdata")
	}
	var buf bytes.Buffer
	if err := WriteBlktrace(&buf, NewSliceSource("golden", 0, blktraceGolden), 8<<20); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", "blktrace_golden.bin"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBlktraceGoldenFixture(t *testing.T) {
	src, err := OpenBlktrace(filepath.Join("testdata", "blktrace_golden.bin"), BlktraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := drain(t, src)
	if len(got) != len(blktraceGolden) {
		t.Fatalf("decoded %d records, want %d", len(got), len(blktraceGolden))
	}
	for i := range got {
		if got[i] != blktraceGolden[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], blktraceGolden[i])
		}
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if again := drain(t, src); len(again) != len(blktraceGolden) {
		t.Fatalf("post-Reset decoded %d records", len(again))
	}
}

// blkEvent builds one little-endian blktrace event for corruption tests.
func blkEvent(timeNs uint64, sector uint64, nbytes, action uint32, pduLen uint16, pdu []byte) []byte {
	var hdr [blkHeaderLen]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], blkMagicBase|0x07)
	le.PutUint64(hdr[8:16], timeNs)
	le.PutUint64(hdr[16:24], sector)
	le.PutUint32(hdr[24:28], nbytes)
	le.PutUint32(hdr[28:32], action)
	le.PutUint16(hdr[46:48], pduLen)
	return append(hdr[:], pdu...)
}

func TestBlktraceSkipsAndErrors(t *testing.T) {
	q := uint32(blkTAQueue) | 1<<blkTCShift
	var stream []byte
	stream = append(stream, blkEvent(0, 100, 4096, q, 0, nil)...)
	// Completion event (action id 8): skipped.
	stream = append(stream, blkEvent(10, 100, 4096, 8|1<<blkTCShift, 0, nil)...)
	// Notify message with payload: skipped, payload discarded.
	stream = append(stream, blkEvent(20, 0, 0, blkTCNotify<<blkTCShift, 5, []byte("hello"))...)
	stream = append(stream, blkEvent(30, 200, 512, q|blkTCWrite<<blkTCShift, 0, nil)...)
	src := NewBlktraceSource(bytes.NewReader(stream), BlktraceOptions{})
	got := drain(t, src)
	if len(got) != 2 {
		t.Fatalf("decoded %d records, want 2", len(got))
	}
	if got[1].LBA != 200 || !got[1].Write || got[1].Arrival != 30*time.Nanosecond {
		t.Fatalf("record 1 = %+v", got[1])
	}

	// Truncated mid-header: error, not EOF.
	trunc := stream[:len(stream)-10]
	src = NewBlktraceSource(bytes.NewReader(trunc), BlktraceOptions{})
	var rec Record
	var err error
	for err == nil {
		err = src.Next(&rec)
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated stream err = %v, want ErrBadFormat", err)
	}

	// Garbage magic: rejected up front.
	src = NewBlktraceSource(bytes.NewReader([]byte("this is not a blktrace file, not at all......")), BlktraceOptions{})
	if err := src.Next(&rec); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("garbage err = %v, want ErrBadFormat", err)
	}
}

func TestBlktraceBigEndian(t *testing.T) {
	var hdr [blkHeaderLen]byte
	be := binary.BigEndian
	be.PutUint32(hdr[0:4], blkMagicBase|0x07)
	be.PutUint64(hdr[8:16], 42)
	be.PutUint64(hdr[16:24], 1000)
	be.PutUint32(hdr[24:28], 1024)
	be.PutUint32(hdr[28:32], uint32(blkTAQueue)|1<<blkTCShift)
	src := NewBlktraceSource(bytes.NewReader(hdr[:]), BlktraceOptions{})
	got := drain(t, src)
	if len(got) != 1 || got[0].LBA != 1000 || got[0].Sectors != 2 {
		t.Fatalf("big-endian decode = %+v", got)
	}
}

func TestNativeSourceMatchesRead(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	src := NewNativeSource(bytes.NewReader(buf.Bytes()))
	got := drain(t, src)
	if len(got) != len(want.Records) {
		t.Fatalf("source %d records, Read %d", len(got), len(want.Records))
	}
	for i := range got {
		if got[i] != want.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], want.Records[i])
		}
	}
	if src.Name() != tr.Name || src.DiskSectors() != tr.DiskSectors {
		t.Fatalf("metadata = %q/%d", src.Name(), src.DiskSectors())
	}
	// Same strictness as Read: backwards arrivals rejected.
	bad := "arrival_us,op,lba,sectors\n5,R,0,8\n4,R,0,8\n"
	src = NewNativeSource(strings.NewReader(bad))
	var rec Record
	var e error
	for e == nil {
		e = src.Next(&rec)
	}
	if !errors.Is(e, ErrBadFormat) {
		t.Fatalf("backwards arrival err = %v", e)
	}
}

func TestDetectFormatAndOpen(t *testing.T) {
	dir := t.TempDir()

	native := filepath.Join(dir, "t.csv")
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(native, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	cachePath := filepath.Join(dir, "t.cache")
	if _, err := BuildCache(cachePath, sampleTrace().Source()); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		path string
		want Format
		n    int
	}{
		{native, FormatNative, 4},
		{filepath.Join("testdata", "msr_golden.csv"), FormatMSR, 5},
		{filepath.Join("testdata", "cello_golden.srt"), FormatCello, 4},
		{filepath.Join("testdata", "blktrace_golden.bin"), FormatBlktrace, 4},
		{cachePath, FormatCache, 4},
	}
	for _, c := range cases {
		got, err := DetectFormat(c.path)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		if got != c.want {
			t.Fatalf("%s: detected %v, want %v", c.path, got, c.want)
		}
		src, err := Open(c.path, FormatUnknown)
		if err != nil {
			t.Fatalf("Open %s: %v", c.path, err)
		}
		if n := len(drain(t, src)); n != c.n {
			t.Fatalf("%s: %d records, want %d", c.path, n, c.n)
		}
		if err := CloseSource(src); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := ParseFormat("nonsense"); err == nil {
		t.Fatal("ParseFormat accepted nonsense")
	}
	if f, err := ParseFormat("auto"); err != nil || f != FormatUnknown {
		t.Fatalf("ParseFormat(auto) = %v/%v", f, err)
	}
}

func TestWriteMSRRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteMSR(&buf, tr.Source(), "hostA", 3); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMSR(bytes.NewReader(buf.Bytes()), MSROptions{Hostname: "hostA", DiskNumber: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip %d records, want %d", len(got.Records), len(tr.Records))
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestWriteCelloRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCello(&buf, tr.Source(), 2); err != nil {
		t.Fatal(err)
	}
	src := NewCelloSource(bytes.NewReader(buf.Bytes()), CelloOptions{Name: "rt", Device: 2})
	got, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip %d records, want %d", len(got.Records), len(tr.Records))
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], tr.Records[i])
		}
	}
}
