package trace

import (
	"errors"
	"sort"
	"time"
)

// Trace manipulation utilities: windowing, time scaling, address-space
// remapping, and merging — the operations needed to turn a captured
// trace into a tuning profile (window the busy day, rescale to a test
// duration) or to compose multi-tenant workloads (merge).

// Window returns the records with Arrival in [from, to), rebased so the
// first kept record arrives at zero offset from `from`.
func (t *Trace) Window(from, to time.Duration) *Trace {
	out := &Trace{Name: t.Name, DiskSectors: t.DiskSectors}
	for _, r := range t.Records {
		if r.Arrival < from || r.Arrival >= to {
			continue
		}
		r.Arrival -= from
		out.Records = append(out.Records, r)
	}
	return out
}

// ScaleTime multiplies every arrival by factor (> 0): factor < 1
// compresses the trace (a stress accelerant), factor > 1 dilates it.
// Idle-interval durations scale linearly, CoV and ordering are preserved.
func (t *Trace) ScaleTime(factor float64) (*Trace, error) {
	if factor <= 0 {
		return nil, errors.New("trace: non-positive time scale")
	}
	out := &Trace{Name: t.Name, DiskSectors: t.DiskSectors, Records: make([]Record, len(t.Records))}
	for i, r := range t.Records {
		r.Arrival = time.Duration(float64(r.Arrival) * factor)
		out.Records[i] = r
	}
	return out, nil
}

// RemapLBA linearly rescales record extents onto a different address
// space (the replayer does this on the fly; this does it once, e.g.
// before writing a portable file).
func (t *Trace) RemapLBA(targetSectors int64) (*Trace, error) {
	if targetSectors <= 0 {
		return nil, errors.New("trace: non-positive target size")
	}
	src := t.DiskSectors
	if src <= 0 {
		// Derive from the extents.
		for _, r := range t.Records {
			if end := r.LBA + r.Sectors; end > src {
				src = end
			}
		}
		if src <= 0 {
			return nil, errors.New("trace: empty address space")
		}
	}
	out := &Trace{Name: t.Name, DiskSectors: targetSectors, Records: make([]Record, len(t.Records))}
	for i, r := range t.Records {
		r.LBA = int64(float64(r.LBA) / float64(src) * float64(targetSectors))
		if r.LBA+r.Sectors > targetSectors {
			if r.Sectors > targetSectors {
				r.Sectors = targetSectors
			}
			r.LBA = targetSectors - r.Sectors
		}
		out.Records[i] = r
	}
	return out, nil
}

// Merge interleaves traces by arrival time into one workload (e.g. to
// model disk sharing, the paper's "profit in the cloud by encouraging
// sharing a disk among more users" direction). The result's address
// space is the maximum of the inputs'.
func Merge(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	total := 0
	for _, t := range traces {
		total += len(t.Records)
		if t.DiskSectors > out.DiskSectors {
			out.DiskSectors = t.DiskSectors
		}
	}
	out.Records = make([]Record, 0, total)
	for _, t := range traces {
		out.Records = append(out.Records, t.Records...)
	}
	sort.SliceStable(out.Records, func(i, j int) bool {
		return out.Records[i].Arrival < out.Records[j].Arrival
	})
	return out
}
