package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// buildSampleCache writes a cache of the given synthetic trace and
// returns its path and the expected records.
func buildSampleCache(t *testing.T, n int) (string, []Record) {
	t.Helper()
	spec := Synth{Name: "cachetest", MeanIdle: 10 * time.Millisecond, IdleCoV: 2,
		NominalRequests: int64(n), NominalDuration: time.Hour, SeqProb: 0.5, WriteFrac: 0.3}
	tr := spec.Generate(7, time.Hour)
	if len(tr.Records) < 3 {
		t.Fatalf("generator yielded only %d records", len(tr.Records))
	}
	path := filepath.Join(t.TempDir(), "t.cache")
	count, err := BuildCache(path, tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if count != int64(len(tr.Records)) {
		t.Fatalf("BuildCache count = %d, want %d", count, len(tr.Records))
	}
	return path, tr.Records
}

func TestCacheRoundTrip(t *testing.T) {
	// Enough records to span multiple blocks.
	path, want := buildSampleCache(t, 3*cacheBlockLen)
	src, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.Len() != int64(len(want)) {
		t.Fatalf("header count = %d, want %d", src.Len(), len(want))
	}
	got := drain(t, src)
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if src.Name() != "cachetest" {
		t.Fatalf("name = %q", src.Name())
	}
	// Reset streams the identical sequence again.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	again := drain(t, src)
	for i := range again {
		if again[i] != want[i] {
			t.Fatalf("post-Reset record %d differs", i)
		}
	}
}

func TestCachePreservesDiskSectors(t *testing.T) {
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "t.cache")
	if _, err := BuildCache(path, tr.Source()); err != nil {
		t.Fatal(err)
	}
	src, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.DiskSectors() != tr.DiskSectors {
		t.Fatalf("DiskSectors = %d, want %d", src.DiskSectors(), tr.DiskSectors)
	}
}

func TestCacheEmptySource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.cache")
	count, err := BuildCache(path, NewSliceSource("empty", 128, nil))
	if err != nil || count != 0 {
		t.Fatalf("BuildCache = %d/%v", count, err)
	}
	src, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if got := drain(t, src); len(got) != 0 {
		t.Fatalf("empty cache yielded %d records", len(got))
	}
}

func TestCacheRejectsCorruption(t *testing.T) {
	path, _ := buildSampleCache(t, 2000)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flipAt := func(name string, off int) {
		t.Run(name, func(t *testing.T) {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0x40
			p := filepath.Join(t.TempDir(), "bad.cache")
			if err := os.WriteFile(p, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			src, err := OpenCache(p)
			if err == nil {
				defer src.Close()
				var rec Record
				for err == nil {
					err = src.Next(&rec)
				}
			}
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("err = %v, want ErrBadFormat", err)
			}
		})
	}

	flipAt("magic", 2)
	flipAt("header-body", len(cacheMagic)+5) // count field: header CRC must trip
	flipAt("block-body", len(data)/2)        // mid-block bit flip: block CRC must trip
	flipAt("block-crc", len(data)-2)         // flipped checksum itself
}

func TestCacheRejectsTruncation(t *testing.T) {
	path, _ := buildSampleCache(t, 2000)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(data) - 1, len(data) - 17, len(data) / 2, len(cacheMagic) + 3} {
		p := filepath.Join(t.TempDir(), "trunc.cache")
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		src, err := OpenCache(p)
		if err == nil {
			var rec Record
			for err == nil {
				err = src.Next(&rec)
			}
			src.Close()
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("cut at %d: err = %v, want ErrBadFormat", cut, err)
		}
	}
}

func TestCacheRejectsTrailingGarbage(t *testing.T) {
	path, _ := buildSampleCache(t, 100)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "trail.cache")
	if err := os.WriteFile(p, append(data, 0xAA), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenCache(p)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var rec Record
	for err == nil {
		err = src.Next(&rec)
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestCacheAtomicBuildLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.cache")
	if _, err := BuildCache(path, sampleTrace().Source()); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "t.cache" {
		t.Fatalf("directory contents = %v, want just t.cache", ents)
	}
	// A failing source must not leave a live cache or temp files behind.
	bad := &errSource{after: 3}
	if _, err := BuildCache(filepath.Join(dir, "bad.cache"), bad); err == nil {
		t.Fatal("BuildCache over failing source succeeded")
	}
	ents, _ = os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("failed build left files: %v", ents)
	}
}

// errSource fails after a few records.
type errSource struct{ n, after int }

func (e *errSource) Next(rec *Record) error {
	if e.n >= e.after {
		return errors.New("synthetic source failure")
	}
	e.n++
	rec.Arrival = time.Duration(e.n) * time.Millisecond
	rec.LBA, rec.Sectors = int64(e.n*8), 8
	return nil
}
func (e *errSource) Reset() error       { e.n = 0; return nil }
func (e *errSource) DiskSectors() int64 { return 1024 }
func (e *errSource) Name() string       { return "errsource" }
