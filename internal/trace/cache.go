package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"
)

// The columnar trace cache: a compact binary encoding that makes
// re-replaying a parsed trace cheap. Parsing an MSR CSV costs text
// scanning per record; the cache stores the decoded columns directly —
// arrival deltas, LBA deltas, sector counts as varints plus a write
// bitmap — so a cached replay is bounded by varint decode, not text
// parse, and the file is typically 5-10x smaller than the CSV.
//
// Layout (integers big-endian, matching the fleet checkpoint idiom):
//
//	magic "SCRBTRC1"
//	header frame:  u32 len | body | u32 CRC32(body)
//	  body: u32 version=1, u64 recordCount, u64 diskSectors,
//	        u32 blockLen (records per block), u16 nameLen, name
//	data frames:   u32 len | body | u32 CRC32(body)  (repeated)
//	  body: u32 n, then columns for n records:
//	        arrivals  — first absolute, then deltas, uvarint ns
//	        LBAs      — first absolute, then deltas, zigzag varint
//	        sectors   — uvarint
//	        writes    — bitmap, ceil(n/8) bytes
//
// Every frame is independently CRC-checked, so corruption and
// truncation are detected at the damaged block, and each block decodes
// from its own absolute first record — a bounded, constant-memory
// streaming read.

const (
	cacheMagic    = "SCRBTRC1"
	cacheVersion  = 1
	cacheBlockLen = 8192 // records per frame: ~64-200 KB encoded

	// cacheMaxFrame bounds a frame body; larger lengths are corruption,
	// not data (a full block of worst-case varints stays far below it).
	cacheMaxFrame = 1 << 24
)

// BuildCache streams a source into a columnar cache file at path,
// returning the record count. The write is atomic: a temp file in the
// same directory is synced and renamed over path, and the header
// (which carries the total count) is patched before the rename, so a
// crash never leaves a live, half-written cache.
func BuildCache(path string, src Source) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".scrubtrace-*")
	if err != nil {
		return 0, err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	enc := newCacheEncoder(tmp, src.Name())
	var rec Record
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		if err := enc.add(rec); err != nil {
			return 0, err
		}
	}
	// DiskSectors is read after the drain: parser sources only know the
	// full extent once scanned.
	if err := enc.finish(src.DiskSectors()); err != nil {
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	tmp = nil
	return enc.count, nil
}

// cacheEncoder accumulates records into framed columnar blocks.
type cacheEncoder struct {
	f     *os.File
	bw    *bufio.Writer
	name  string
	block []Record
	buf   []byte // frame body scratch
	var64 [binary.MaxVarintLen64]byte
	count int64
}

func newCacheEncoder(f *os.File, name string) *cacheEncoder {
	return &cacheEncoder{
		f:     f,
		bw:    bufio.NewWriterSize(f, 1<<16),
		name:  name,
		block: make([]Record, 0, cacheBlockLen),
		buf:   make([]byte, 0, 1<<17),
	}
}

func (e *cacheEncoder) add(rec Record) error {
	if e.count == 0 && len(e.block) == 0 {
		// Reserve the header region first; it is patched in finish once
		// the count and extent are known. Length is fixed because the
		// body layout is fixed-width apart from the name.
		if err := e.writeHeader(0, 0); err != nil {
			return err
		}
	}
	e.block = append(e.block, rec)
	e.count++
	if len(e.block) == cacheBlockLen {
		return e.flushBlock()
	}
	return nil
}

// writeHeader emits magic + header frame at the current position.
func (e *cacheEncoder) writeHeader(count, diskSectors int64) error {
	if len(e.name) > math.MaxUint16 {
		return fmt.Errorf("trace: cache: name too long (%d bytes)", len(e.name))
	}
	e.buf = e.buf[:0]
	e.buf = binary.BigEndian.AppendUint32(e.buf, cacheVersion)
	e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(count))
	e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(diskSectors))
	e.buf = binary.BigEndian.AppendUint32(e.buf, cacheBlockLen)
	e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(len(e.name)))
	e.buf = append(e.buf, e.name...)
	if _, err := e.bw.WriteString(cacheMagic); err != nil {
		return err
	}
	return e.writeFrame()
}

// writeFrame emits e.buf as a length+CRC frame.
func (e *cacheEncoder) writeFrame() error {
	var pre [4]byte
	binary.BigEndian.PutUint32(pre[:], uint32(len(e.buf)))
	if _, err := e.bw.Write(pre[:]); err != nil {
		return err
	}
	if _, err := e.bw.Write(e.buf); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(pre[:], crc32.ChecksumIEEE(e.buf))
	_, err := e.bw.Write(pre[:])
	return err
}

func (e *cacheEncoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.var64[:], v)
	e.buf = append(e.buf, e.var64[:n]...)
}

func (e *cacheEncoder) svarint(v int64) {
	n := binary.PutVarint(e.var64[:], v)
	e.buf = append(e.buf, e.var64[:n]...)
}

func (e *cacheEncoder) flushBlock() error {
	n := len(e.block)
	if n == 0 {
		return nil
	}
	e.buf = e.buf[:0]
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(n))
	// Arrivals: absolute first, non-negative ns deltas after.
	e.uvarint(uint64(e.block[0].Arrival))
	for i := 1; i < n; i++ {
		e.uvarint(uint64(e.block[i].Arrival - e.block[i-1].Arrival))
	}
	// LBAs: absolute first (zigzag handles any sign), deltas after.
	e.svarint(e.block[0].LBA)
	for i := 1; i < n; i++ {
		e.svarint(e.block[i].LBA - e.block[i-1].LBA)
	}
	for i := 0; i < n; i++ {
		e.uvarint(uint64(e.block[i].Sectors))
	}
	bitmap := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		if e.block[i].Write {
			bitmap[i/8] |= 1 << uint(i%8)
		}
	}
	e.buf = append(e.buf, bitmap...)
	e.block = e.block[:0]
	return e.writeFrame()
}

// finish flushes the tail block and patches the header with the final
// count and extent.
func (e *cacheEncoder) finish(diskSectors int64) error {
	if e.count == 0 {
		// Header was never reserved (empty source); write it now.
		if err := e.writeHeader(0, diskSectors); err != nil {
			return err
		}
		return e.bw.Flush()
	}
	if err := e.flushBlock(); err != nil {
		return err
	}
	if err := e.bw.Flush(); err != nil {
		return err
	}
	if _, err := e.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	e.bw.Reset(e.f)
	if err := e.writeHeader(e.count, diskSectors); err != nil {
		return err
	}
	return e.bw.Flush()
}

// CacheSource streams records back out of a columnar cache file,
// decoding one CRC-verified block at a time.
type CacheSource struct {
	r      io.Reader
	br     *bufio.Reader
	closer io.Closer

	name        string
	count       int64
	diskSectors int64
	dataOff     int64 // file offset of the first data frame

	block   []Record
	pos     int
	decoded int64
	buf     []byte
	sticky  error
}

// NewCacheSource wraps a reader positioned at the start of a cache
// stream. Reset requires the reader to implement io.Seeker.
func NewCacheSource(r io.Reader) (*CacheSource, error) {
	c := &CacheSource{r: r, br: bufio.NewReaderSize(r, 1<<16), buf: make([]byte, 0, 1<<17)}
	if err := c.readHeader(); err != nil {
		return nil, err
	}
	return c, nil
}

// OpenCache opens a columnar cache file as a resettable, closable
// source.
func OpenCache(path string) (*CacheSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c, err := NewCacheSource(f)
	if err != nil {
		f.Close() //scrublint:allow errsink error path discards the read-only close; the open error propagates
		return nil, err
	}
	c.closer = f
	if c.name == "" {
		c.name = path
	}
	return c, nil
}

// readHeader validates the magic and header frame.
func (c *CacheSource) readHeader() error {
	var magic [len(cacheMagic)]byte
	if _, err := io.ReadFull(c.br, magic[:]); err != nil {
		return fmt.Errorf("%w: cache: short magic: %v", ErrBadFormat, err)
	}
	if string(magic[:]) != cacheMagic {
		return fmt.Errorf("%w: cache: bad magic %q", ErrBadFormat, magic[:])
	}
	body, err := c.readFrame()
	if err != nil {
		return fmt.Errorf("%w: cache: header: %v", ErrBadFormat, err)
	}
	if len(body) < 4+8+8+4+2 {
		return fmt.Errorf("%w: cache: header too short", ErrBadFormat)
	}
	if v := binary.BigEndian.Uint32(body[0:4]); v != cacheVersion {
		return fmt.Errorf("%w: cache: unsupported version %d", ErrBadFormat, v)
	}
	count := binary.BigEndian.Uint64(body[4:12])
	sectors := binary.BigEndian.Uint64(body[12:20])
	if count > math.MaxInt64 || sectors > math.MaxInt64 {
		return fmt.Errorf("%w: cache: header counts out of range", ErrBadFormat)
	}
	c.count = int64(count)
	c.diskSectors = int64(sectors)
	nameLen := int(binary.BigEndian.Uint16(body[24:26]))
	if len(body) != 4+8+8+4+2+nameLen {
		return fmt.Errorf("%w: cache: header length mismatch", ErrBadFormat)
	}
	c.name = string(body[26 : 26+nameLen])
	c.dataOff = int64(len(cacheMagic)) + 4 + int64(len(body)) + 4
	return nil
}

// readFrame reads one length+body+CRC frame into c.buf.
func (c *CacheSource) readFrame() ([]byte, error) {
	var pre [4]byte
	if _, err := io.ReadFull(c.br, pre[:]); err != nil {
		return nil, fmt.Errorf("truncated frame length: %v", err)
	}
	n := binary.BigEndian.Uint32(pre[:])
	if n > cacheMaxFrame {
		return nil, fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	if cap(c.buf) < int(n) {
		c.buf = make([]byte, n)
	}
	body := c.buf[:n]
	if _, err := io.ReadFull(c.br, body); err != nil {
		return nil, fmt.Errorf("truncated frame body: %v", err)
	}
	if _, err := io.ReadFull(c.br, pre[:]); err != nil {
		return nil, fmt.Errorf("truncated frame checksum: %v", err)
	}
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(pre[:]); got != want {
		return nil, fmt.Errorf("checksum mismatch (got %#x, want %#x)", got, want)
	}
	return body, nil
}

// Next implements Source.
//
//scrub:hotpath
func (c *CacheSource) Next(rec *Record) error {
	if c.pos < len(c.block) {
		*rec = c.block[c.pos]
		c.pos++
		return nil
	}
	if c.sticky != nil {
		return c.sticky
	}
	if err := c.refill(); err != nil {
		if err != io.EOF {
			c.sticky = err
		}
		return err
	}
	*rec = c.block[0]
	c.pos = 1
	return nil
}

// refill decodes the next block into c.block.
func (c *CacheSource) refill() error {
	if c.decoded >= c.count {
		// All advertised records seen; any trailing bytes are corruption.
		if _, err := c.br.ReadByte(); err != io.EOF {
			return fmt.Errorf("%w: cache: trailing data after %d records", ErrBadFormat, c.decoded)
		}
		return io.EOF
	}
	body, err := c.readFrame()
	if err != nil {
		return fmt.Errorf("%w: cache: block at record %d: %v", ErrBadFormat, c.decoded, err)
	}
	if len(body) < 4 {
		return fmt.Errorf("%w: cache: block too short", ErrBadFormat)
	}
	n := int(binary.BigEndian.Uint32(body[0:4]))
	if n <= 0 || n > cacheBlockLen || int64(n) > c.count-c.decoded {
		return fmt.Errorf("%w: cache: block of %d records at record %d", ErrBadFormat, n, c.decoded)
	}
	body = body[4:]
	if cap(c.block) < n {
		c.block = make([]Record, n)
	}
	c.block = c.block[:n]

	// Arrivals.
	prevA := int64(0)
	for i := 0; i < n; i++ {
		v, k := binary.Uvarint(body)
		if k <= 0 || v > math.MaxInt64 {
			return c.corrupt("arrival", i)
		}
		body = body[k:]
		if i == 0 {
			prevA = int64(v)
		} else {
			if int64(v) > math.MaxInt64-prevA {
				return c.corrupt("arrival", i)
			}
			prevA += int64(v)
		}
		c.block[i].Arrival = time.Duration(prevA)
	}
	// LBAs.
	prevL := int64(0)
	for i := 0; i < n; i++ {
		v, k := binary.Varint(body)
		if k <= 0 {
			return c.corrupt("lba", i)
		}
		body = body[k:]
		if i == 0 {
			prevL = v
		} else {
			s := prevL + v
			if (v > 0 && s < prevL) || (v < 0 && s > prevL) {
				return c.corrupt("lba", i)
			}
			prevL = s
		}
		if prevL < 0 {
			return c.corrupt("lba", i)
		}
		c.block[i].LBA = prevL
	}
	// Sectors.
	for i := 0; i < n; i++ {
		v, k := binary.Uvarint(body)
		if k <= 0 || v == 0 || v > math.MaxInt64 {
			return c.corrupt("sectors", i)
		}
		body = body[k:]
		c.block[i].Sectors = int64(v)
	}
	// Write bitmap.
	if len(body) != (n+7)/8 {
		return fmt.Errorf("%w: cache: block bitmap length mismatch", ErrBadFormat)
	}
	for i := 0; i < n; i++ {
		c.block[i].Write = body[i/8]&(1<<uint(i%8)) != 0
	}
	c.decoded += int64(n)
	return nil
}

func (c *CacheSource) corrupt(col string, i int) error {
	return fmt.Errorf("%w: cache: corrupt %s column at record %d", ErrBadFormat, col, c.decoded+int64(i))
}

// Reset implements Source.
func (c *CacheSource) Reset() error {
	sk, ok := c.r.(io.Seeker)
	if !ok {
		return ErrNotResettable
	}
	if _, err := sk.Seek(c.dataOff, io.SeekStart); err != nil {
		return err
	}
	c.br.Reset(c.r)
	c.block = c.block[:0]
	c.pos, c.decoded, c.sticky = 0, 0, nil
	return nil
}

// DiskSectors implements Source: known up front from the header.
func (c *CacheSource) DiskSectors() int64 { return c.diskSectors }

// Name implements Source.
func (c *CacheSource) Name() string { return c.name }

// Len returns the total record count from the header.
func (c *CacheSource) Len() int64 { return c.count }

// Close closes the underlying file when the source was opened from a
// path; otherwise it is a no-op.
func (c *CacheSource) Close() error {
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}
