package trace

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// checkSourceInvariants drains a source and asserts the invariants every
// consumer relies on: monotone non-negative arrivals, valid extents
// contained in the reported address space, no panic on any input.
func checkSourceInvariants(t *testing.T, src Source) {
	var rec Record
	var prev time.Duration
	i := 0
	for {
		err := src.Next(&rec)
		if err != nil {
			return // malformed input must error, never panic
		}
		if rec.Arrival < prev {
			t.Fatalf("record %d: arrival %v went backwards (prev %v)", i, rec.Arrival, prev)
		}
		prev = rec.Arrival
		if rec.LBA < 0 || rec.Sectors <= 0 {
			t.Fatalf("record %d: invalid extent [%d,+%d)", i, rec.LBA, rec.Sectors)
		}
		if end := rec.LBA + rec.Sectors; end < rec.LBA || end > src.DiskSectors() {
			t.Fatalf("record %d: extent end outside disk of %d sectors", i, src.DiskSectors())
		}
		i++
		if i > 1<<16 {
			return // enough; keep fuzz iterations fast
		}
	}
}

// FuzzParseMSRCambridge drives the streaming MSR decoder, including the
// Windows-export hardening paths (BOM prefix, CRLF line endings).
func FuzzParseMSRCambridge(f *testing.F) {
	seeds := []string{
		msrSample,
		"\xef\xbb\xbf" + strings.ReplaceAll(msrSample, "\n", "\r\n"),
		"\xef\xbb\xbf128166372003061629,src1,1,Read,1024,4096,411\r\n",
		"\xef\xbb\xbf# comment first\r\n128166372003061629,src1,1,Write,0,512,1\r\n",
		"\xef\xbb",     // torn BOM
		"\xef\xbb\xbf", // BOM only
		"100,h,0,Read,1024,4096,1\n\xef\xbb\xbf200,h,0,Write,0,512,1\n", // mid-file BOM
		"128166372003061629,src1,1,Read,1024,4096\r\r\n",
		"9223372036854775807,h,0,Read,0,1,0\r\n0,h,0,Read,0,1,0\r\n",
		"0,h,0,Read,9223372036854775295,512,0\n",
		"1000000,h,0,Read,0,512,1\n999000,h,0,Read,512,512,1\n",
		strings.Repeat("x", 200) + "\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		checkSourceInvariants(t, NewMSRSource(strings.NewReader(data), MSROptions{DiskNumber: -1}))
	})
}

// FuzzParseCello drives the streaming Cello/SRT decoder.
func FuzzParseCello(f *testing.F) {
	seeds := []string{
		"834101885.041313 3 1048576 8192 R 0 17\n834101885.061313 3 2097152 4096 W 1\n",
		"# comment\n\n0.5 0 0 512 read\n",
		"0.5\t0\t0\t512\tWrite\n",
		"0.5 0 0 512 R\r\n1.5 0 512 512 W\r\n",
		"\xef\xbb\xbf0.5 0 0 512 R\n",
		"2.0 0 0 512 R\n1.0 0 0 512 R\n", // inversion: clamped
		"999999999999.999 1 0 512 R\n",
		"-0.5 0 0 512 R\n",
		"0.5 0 0 512 Q\n",
		"0..5 0 0 512 R\n",
		"0.5 0 0 512\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		checkSourceInvariants(t, NewCelloSource(strings.NewReader(data), CelloOptions{Device: -1}))
	})
}

// FuzzParseBlktrace drives the binary decoder with arbitrary bytes; the
// seeds cover both endiannesses, payload skipping and truncations.
func FuzzParseBlktrace(f *testing.F) {
	var good bytes.Buffer
	if err := WriteBlktrace(&good, NewSliceSource("seed", 0, []Record{
		{Arrival: 0, LBA: 8, Sectors: 8},
		{Arrival: time.Millisecond, LBA: 16, Sectors: 8, Write: true},
	}), 8<<20); err != nil {
		f.Fatal(err)
	}
	notify := blkEvent(5, 0, 0, blkTCNotify<<blkTCShift, 4, []byte("abcd"))
	seeds := [][]byte{
		good.Bytes(),
		good.Bytes()[:len(good.Bytes())-7], // torn final header
		append(append([]byte{}, notify...), good.Bytes()...),
		blkEvent(1, 1, 512, blkTAQueue|1<<blkTCShift, 100, nil), // pdu_len beyond EOF
		[]byte("not a blktrace stream at all, just text....."),
		{},
		{0x00, 0x74, 0x61, 0x65}, // big-endian magic alone
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkSourceInvariants(t, NewBlktraceSource(bytes.NewReader(data), BlktraceOptions{}))
	})
}

// FuzzCacheOpen drives the cache decoder with arbitrary bytes: only a
// CRC-clean, well-formed file may yield records, and a valid prefix of a
// real cache must never be silently accepted.
func FuzzCacheOpen(f *testing.F) {
	// Seed with a real cache built via a temp file.
	path := f.TempDir() + "/seed.cache"
	if _, err := BuildCache(path, sampleFuzzTrace().Source()); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	seeds := [][]byte{
		data,
		data[:len(data)-3],
		data[:len(cacheMagic)+2],
		append(append([]byte{}, data...), 0x00),
		[]byte(cacheMagic),
		[]byte("SCRBTRC2junk"),
		{},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := NewCacheSource(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkSourceInvariants(t, src)
	})
}

func sampleFuzzTrace() *Trace {
	return &Trace{Name: "fuzzseed", DiskSectors: 4096, Records: []Record{
		{Arrival: 0, LBA: 0, Sectors: 8},
		{Arrival: time.Millisecond, LBA: 2048, Sectors: 16, Write: true},
		{Arrival: 2 * time.Millisecond, LBA: 2064, Sectors: 16},
	}}
}
