package trace

import (
	"errors"
	"strings"
	"testing"
	"time"
)

const msrSample = `128166372003061629,src1,1,Read,1024,4096,411
128166372003071629,src1,1,Write,8192,512,210
128166372003081629,src1,2,Read,0,4096,99
128166372003091629,src2,1,Read,512,1024,77
128166372003101629,src1,1,Read,16384,8192,300
`

func TestReadMSRBasic(t *testing.T) {
	tr, err := ReadMSR(strings.NewReader(msrSample), MSROptions{Name: "src1.1", DiskNumber: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 5 {
		t.Fatalf("records = %d, want 5", len(tr.Records))
	}
	// First arrival normalized to zero; second 1ms later (10^4 ticks).
	if tr.Records[0].Arrival != 0 {
		t.Fatalf("first arrival = %v", tr.Records[0].Arrival)
	}
	if tr.Records[1].Arrival != time.Millisecond {
		t.Fatalf("second arrival = %v, want 1ms", tr.Records[1].Arrival)
	}
	// Byte offsets/sizes become sectors.
	if tr.Records[0].LBA != 2 || tr.Records[0].Sectors != 8 {
		t.Fatalf("record 0 = %+v", tr.Records[0])
	}
	if !tr.Records[1].Write {
		t.Fatal("write record not flagged")
	}
	// Size rounds up to whole sectors.
	if tr.Records[3].Sectors != 2 {
		t.Fatalf("1024B size -> %d sectors", tr.Records[3].Sectors)
	}
	if tr.DiskSectors < tr.Records[4].LBA+tr.Records[4].Sectors {
		t.Fatal("DiskSectors not tracked")
	}
}

func TestReadMSRFilters(t *testing.T) {
	tr, err := ReadMSR(strings.NewReader(msrSample), MSROptions{Hostname: "src1", DiskNumber: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 3 {
		t.Fatalf("filtered records = %d, want 3", len(tr.Records))
	}
	tr, err = ReadMSR(strings.NewReader(msrSample), MSROptions{DiskNumber: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 {
		t.Fatalf("disk-2 records = %d, want 1", len(tr.Records))
	}
	tr, err = ReadMSR(strings.NewReader(msrSample), MSROptions{DiskNumber: -1, MaxRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("capped records = %d, want 2", len(tr.Records))
	}
}

func TestReadMSRClampsInversions(t *testing.T) {
	src := `1000000,h,0,Read,0,512,1
999000,h,0,Read,512,512,1
1002000,h,0,Read,1024,512,1
`
	tr, err := ReadMSR(strings.NewReader(src), MSROptions{DiskNumber: -1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Records[1].Arrival != tr.Records[0].Arrival {
		t.Fatal("inversion not clamped")
	}
	if tr.Records[2].Arrival <= tr.Records[1].Arrival {
		t.Fatal("ordering lost after clamp")
	}
}

func TestReadMSRRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                      // empty
		"1,h,0,Read,0\n",        // too few fields
		"x,h,0,Read,0,512,1\n",  // bad timestamp
		"1,h,y,Read,0,512,1\n",  // bad disk number
		"1,h,0,Frob,0,512,1\n",  // bad op
		"1,h,0,Read,-1,512,1\n", // negative offset
		"1,h,0,Read,0,0,1\n",    // zero size
		"# only a comment\n",    // no records
	}
	for i, c := range cases {
		if _, err := ReadMSR(strings.NewReader(c), MSROptions{DiskNumber: -1}); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("case %d: err = %v, want ErrBadFormat", i, err)
		}
	}
}

func TestReadMSRToleratesCommentsAndBlanks(t *testing.T) {
	src := "# header comment\n\n128166372003061629,h,0,read,0,512,1\n"
	tr, err := ReadMSR(strings.NewReader(src), MSROptions{DiskNumber: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 {
		t.Fatalf("records = %d", len(tr.Records))
	}
}
