package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	in := &Trace{
		Name:        "test",
		DiskSectors: 1000000,
		Records: []Record{
			{Arrival: 0, LBA: 100, Sectors: 8},
			{Arrival: 1500 * time.Microsecond, LBA: 200, Sectors: 16, Write: true},
			{Arrival: 2 * time.Second, LBA: 0, Sectors: 1},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.DiskSectors != in.DiskSectors {
		t.Fatalf("meta = %q/%d", out.Name, out.DiskSectors)
	}
	if len(out.Records) != len(in.Records) {
		t.Fatalf("got %d records", len(out.Records))
	}
	for i := range in.Records {
		if out.Records[i] != in.Records[i] {
			t.Fatalf("record %d: %+v != %+v", i, out.Records[i], in.Records[i])
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                                     // no header
		"bogus header\n1,R,0,8\n",              // wrong header
		"arrival_us,op,lba,sectors\n1,R,0\n",   // missing field
		"arrival_us,op,lba,sectors\nx,R,0,8\n", // bad arrival
		"arrival_us,op,lba,sectors\n1,Q,0,8\n", // bad op
		"arrival_us,op,lba,sectors\n1,R,x,8\n", // bad lba
		"arrival_us,op,lba,sectors\n1,R,0,x\n", // bad sectors
		"arrival_us,op,lba,sectors\n1,R,-5,8\n",
		"arrival_us,op,lba,sectors\n1,R,0,0\n",
		"arrival_us,op,lba,sectors\n5,R,0,8\n1,R,0,8\n", // time travel
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("case %d: err = %v, want ErrBadFormat", i, err)
		}
	}
}

func TestReadToleratesCommentsAndBlank(t *testing.T) {
	src := "# hello\n\narrival_us,op,lba,sectors\n# mid comment\n10,w,5,8\n"
	tr, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 || !tr.Records[0].Write {
		t.Fatalf("records = %+v", tr.Records)
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Arrival: time.Hour + time.Minute},
		{Arrival: 3 * time.Hour},
	}}
	if tr.Duration() != 3*time.Hour {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	counts := tr.HourlyCounts()
	if len(counts) != 4 || counts[1] != 1 || counts[3] != 1 {
		t.Fatalf("HourlyCounts = %v", counts)
	}
	arr := tr.Arrivals()
	if len(arr) != 2 || arr[0] != time.Hour+time.Minute {
		t.Fatalf("Arrivals = %v", arr)
	}
	empty := &Trace{}
	if empty.Duration() != 0 || empty.HourlyCounts() != nil {
		t.Fatal("empty trace accessors wrong")
	}
}
