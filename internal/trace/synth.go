package trace

import (
	"io"
	"math"
	"math/rand"
	"time"
)

// GapDist selects the idle-gap distribution family of a Synth spec.
type GapDist int

const (
	// GapLognormal produces heavy-tailed gaps with decreasing hazard
	// rates, the shape of the MSR and HP Cello traces (Table II CoVs of
	// 8-200).
	GapLognormal GapDist = iota + 1
	// GapGamma produces near-exponential gaps (CoV slightly below 1),
	// the shape of the TPC-C traces.
	GapGamma
)

// Synth is a calibrated synthetic trace generator: bursts of requests
// separated by idle gaps whose marginal distribution, autocorrelation and
// diurnal modulation are spec parameters.
type Synth struct {
	// Name identifies the disk this spec substitutes for.
	Name string
	// Description matches Table I's workload description.
	Description string
	// NominalDuration is the span of the original trace (one week for
	// MSR/Cello; minutes for TPC-C).
	NominalDuration time.Duration
	// NominalRequests is Table I's request count over NominalDuration.
	NominalRequests int64
	// MeanIdle is the target mean idle-interval duration (Table II).
	MeanIdle time.Duration
	// IdleCoV is the target coefficient of variation of idle intervals
	// (Table II).
	IdleCoV float64
	// Dist selects the gap distribution family.
	Dist GapDist
	// PeriodHours is the dominant activity period (24 for diurnal); 0 or
	// 1 means no periodicity.
	PeriodHours int
	// DiurnalAmp in [0,1) scales day/night modulation of the burst rate.
	DiurnalAmp float64
	// GapPhi is the AR(1) coefficient on log-gaps, giving the
	// autocorrelation Section V-A observes.
	GapPhi float64
	// IntraGap is the mean arrival gap within a burst. The default of zero
	// matches the batched-arrival structure of the SNIA traces (whole
	// bursts share one timestamp), which keeps the inter-burst gap
	// distribution exactly the calibrated one.
	IntraGap time.Duration
	// DiskSectors is the LBA address space.
	DiskSectors int64
	// WriteFrac is the fraction of write requests.
	WriteFrac float64
	// SeqProb is the probability that a request continues the previous
	// one sequentially.
	SeqProb float64
	// ReqSectors is the typical request size in sectors (power-of-two
	// jittered).
	ReqSectors int64
}

// withDefaults fills zero fields.
func (s Synth) withDefaults() Synth {
	if s.NominalDuration <= 0 {
		s.NominalDuration = 7 * 24 * time.Hour
	}
	if s.MeanIdle <= 0 {
		s.MeanIdle = 200 * time.Millisecond
	}
	if s.IdleCoV <= 0 {
		s.IdleCoV = 10
	}
	if s.Dist == 0 {
		s.Dist = GapLognormal
	}
	if s.DiskSectors <= 0 {
		s.DiskSectors = 585937500 // 300 GB at 512 B
	}
	if s.ReqSectors <= 0 {
		s.ReqSectors = 16 // 8 KB
	}
	if s.GapPhi < 0 || s.GapPhi >= 1 {
		s.GapPhi = 0
	}
	return s
}

// BurstLen returns the mean burst length (requests per busy period)
// implied by the nominal request count, duration, and mean idle interval.
func (s Synth) BurstLen() float64 {
	sp := s.withDefaults()
	if sp.NominalRequests <= 0 {
		return 16
	}
	// Closed form of the fixed point: bursts = duration / (meanIdle +
	// burstLen*intraGap) and burstLen = requests / bursts give
	// burstLen = R*meanIdle/dur / (1 - R*intraGap/dur).
	dur := sp.NominalDuration.Seconds()
	r := float64(sp.NominalRequests)
	denom := 1 - r*sp.IntraGap.Seconds()/dur
	if denom <= 0.01 {
		denom = 0.01 // request rate saturates the intra-gap budget
	}
	burstLen := r * sp.MeanIdle.Seconds() / dur / denom
	if burstLen < 1 {
		burstLen = 1
	}
	return burstLen
}

// Generate produces a trace of the given duration. The same seed and
// duration always produce the identical trace.
func (s Synth) Generate(seed int64, duration time.Duration) *Trace {
	t := &Trace{Name: s.Name, DiskSectors: s.withDefaults().DiskSectors}
	s.Stream(seed, duration, func(r Record) bool {
		t.Records = append(t.Records, r)
		return true
	})
	return t
}

// Stream generates records one at a time, calling fn for each; generation
// stops when fn returns false or the duration is reached. It avoids
// materializing multi-million-request traces. Stream and Source share one
// generator, so both yield the identical record sequence for a given
// (seed, duration).
func (s Synth) Stream(seed int64, duration time.Duration, fn func(Record) bool) {
	src := s.Source(seed, duration)
	var rec Record
	for src.Next(&rec) == nil {
		if !fn(rec) {
			return
		}
	}
}

// SynthSource is the pull-iterator form of the generator: a constant-
// memory Source producing the same record sequence Generate materializes.
// Reset rewinds to the first record by re-seeding the RNG.
type SynthSource struct {
	spec     Synth // with defaults applied
	seed     int64
	duration time.Duration

	rng       *rand.Rand
	sampleGap func(mod float64, prevLog float64) (gap float64, logGap float64)
	burstMean float64

	now     time.Duration
	prevLog float64
	cursor  int64
	burstN  int
	burstI  int
	done    bool
}

// Source returns a streaming generator over the given span. The same
// (seed, duration) always produces the identical sequence, and it is the
// sequence Generate and Stream produce.
func (s Synth) Source(seed int64, duration time.Duration) *SynthSource {
	src := &SynthSource{spec: s.withDefaults(), seed: seed, duration: duration}
	src.rewind()
	return src
}

// rewind (re)builds the generator state from the seed.
func (src *SynthSource) rewind() {
	sp := src.spec
	rng := rand.New(rand.NewSource(src.seed))
	src.rng = rng

	// Marginal gap distribution parameters.
	mean := sp.MeanIdle.Seconds()
	cov := sp.IdleCoV
	switch sp.Dist {
	case GapGamma:
		// Gamma with k = 1/CoV^2, scale = mean*CoV^2 (per-draw; phi
		// ignored: TPC-C shows no autocorrelation).
		k := 1 / (cov * cov)
		src.sampleGap = func(mod, _ float64) (float64, float64) {
			g := gammaSample(rng, k) * mean * cov * cov * mod
			return g, math.Log(math.Max(g, 1e-12))
		}
	default: // GapLognormal
		sigma2 := math.Log(1 + cov*cov)
		sigma := math.Sqrt(sigma2)
		mu := math.Log(mean) - sigma2/2
		phi := sp.GapPhi
		innov := sigma * math.Sqrt(1-phi*phi)
		src.sampleGap = func(mod, prevLog float64) (float64, float64) {
			m := mu + math.Log(mod)
			lg := m + phi*(prevLog-m) + innov*rng.NormFloat64()
			return math.Exp(lg), lg
		}
	}

	src.burstMean = sp.BurstLen()
	src.cursor = rng.Int63n(sp.DiskSectors)
	src.now = 0
	src.prevLog = math.Log(mean)
	src.burstN, src.burstI = 0, 0
	src.done = src.duration <= 0
}

// Next implements Source.
//
//scrub:hotpath
func (src *SynthSource) Next(rec *Record) error {
	if src.done {
		return io.EOF
	}
	sp := src.spec
	for {
		if src.burstI < src.burstN && src.now < src.duration {
			// Next record of the current burst.
			sectors := sp.ReqSectors << uint(src.rng.Intn(3)) // 1x..4x
			if sectors < 1 {
				sectors = 1
			}
			if src.rng.Float64() < sp.SeqProb {
				src.cursor += sectors
			} else {
				src.cursor = src.rng.Int63n(sp.DiskSectors)
			}
			if src.cursor+sectors > sp.DiskSectors {
				src.cursor = 0
			}
			rec.Arrival = src.now
			rec.LBA = src.cursor
			rec.Sectors = sectors
			rec.Write = src.rng.Float64() < sp.WriteFrac
			if src.burstI < src.burstN-1 && sp.IntraGap > 0 {
				src.now += time.Duration(src.rng.ExpFloat64() * float64(sp.IntraGap))
			}
			src.burstI++
			return nil
		}
		// Burst exhausted (or overran the horizon): next idle gap,
		// modulated by time of day, then a fresh burst.
		if src.now >= src.duration {
			src.done = true
			return io.EOF
		}
		mod := sp.rateMod(src.now)
		gap, lg := src.sampleGap(mod, src.prevLog)
		src.prevLog = lg
		src.now += time.Duration(gap * float64(time.Second))
		if src.now >= src.duration {
			src.done = true
			return io.EOF
		}
		src.burstN = 1 + geometric(src.rng, src.burstMean-1)
		src.burstI = 0
	}
}

// Reset implements Source.
func (src *SynthSource) Reset() error {
	src.rewind()
	return nil
}

// DiskSectors implements Source.
func (src *SynthSource) DiskSectors() int64 { return src.spec.DiskSectors }

// Name implements Source.
func (src *SynthSource) Name() string { return src.spec.Name }

// rateMod returns the multiplicative gap modulation at time t: above 1
// during quiet hours (longer gaps), below 1 during busy hours.
func (s Synth) rateMod(t time.Duration) float64 {
	if s.PeriodHours <= 1 || s.DiurnalAmp <= 0 {
		return 1
	}
	period := time.Duration(s.PeriodHours) * time.Hour
	phase := float64(t%period) / float64(period)
	// Peak activity mid-period: gaps shrink by (1-amp), grow by 1/(1-amp).
	c := math.Cos(2 * math.Pi * phase)
	return math.Pow(1/(1-s.DiurnalAmp), c)
}

// geometric samples a geometric-like count with the given mean (>= 0).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (1 + mean)
	n := 0
	for rng.Float64() > p {
		n++
		if n > 1<<20 {
			break
		}
	}
	return n
}

// gammaSample draws from Gamma(k, 1) via Marsaglia-Tsang, handling k < 1
// with the boost transform.
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		u := rng.Float64()
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
