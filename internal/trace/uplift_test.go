package trace

import (
	"testing"
	"time"
)

func TestUpliftRemapsAndScales(t *testing.T) {
	tr := sampleTrace() // 4096-sector source
	up, err := Uplift(tr.Source(), UpliftOptions{
		Profile:   DeviceProfile{Name: "big", Sectors: 8192},
		TimeScale: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, up)
	if len(got) != len(tr.Records) {
		t.Fatalf("uplift yielded %d records, want %d", len(got), len(tr.Records))
	}
	if up.DiskSectors() != 8192 {
		t.Fatalf("DiskSectors = %d", up.DiskSectors())
	}
	// Doubled address space: LBAs scale 2x (subject to 4 KB alignment).
	if got[2].LBA != 2048 {
		t.Fatalf("record 2 LBA = %d, want 2048", got[2].LBA)
	}
	// Halved time: the 5ms trace finishes at 2.5ms.
	if got[3].Arrival != 2500*time.Microsecond {
		t.Fatalf("record 3 arrival = %v, want 2.5ms", got[3].Arrival)
	}
	for i, r := range got {
		if r.LBA%8 != 0 {
			t.Fatalf("record %d LBA %d not 4KB aligned", i, r.LBA)
		}
		if r.LBA < 0 || r.LBA+r.Sectors > 8192 {
			t.Fatalf("record %d extent [%d,+%d) outside target", i, r.LBA, r.Sectors)
		}
	}
}

func TestUpliftJitterDeterministicAndMonotone(t *testing.T) {
	spec := Synth{Name: "j", MeanIdle: 5 * time.Millisecond, IdleCoV: 3,
		NominalRequests: 5000, NominalDuration: time.Hour, SeqProb: 0.3}
	tr := spec.Generate(11, time.Hour)
	mk := func(seed int64) []Record {
		up, err := Uplift(tr.Source(), UpliftOptions{
			Profile: ProfileHDD4T, SourceSectors: tr.DiskSectors,
			TimeScale: 1.25, Jitter: 0.2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return drain(t, up)
	}
	a, b := mk(99), mk(99)
	if len(a) != len(b) || len(a) != len(tr.Records) {
		t.Fatalf("lengths: %d %d %d", len(a), len(b), len(tr.Records))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at record %d", i)
		}
	}
	c := mk(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
	var prev time.Duration
	for i, r := range a {
		if r.Arrival < prev {
			t.Fatalf("record %d: jitter reordered arrivals (%v < %v)", i, r.Arrival, prev)
		}
		prev = r.Arrival
	}
}

func TestUpliftResetReplaysIdentically(t *testing.T) {
	tr := sampleTrace()
	up, err := Uplift(tr.Source(), UpliftOptions{Profile: ProfileSSD1T, Jitter: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first := drain(t, up)
	if err := up.Reset(); err != nil {
		t.Fatal(err)
	}
	second := drain(t, up)
	if len(first) != len(second) {
		t.Fatalf("lengths differ after Reset")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("record %d differs after Reset: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestUpliftValidation(t *testing.T) {
	tr := sampleTrace()
	if _, err := Uplift(tr.Source(), UpliftOptions{}); err == nil {
		t.Fatal("accepted empty profile")
	}
	if _, err := Uplift(NewSliceSource("x", 0, nil), UpliftOptions{Profile: ProfileHDD4T}); err == nil {
		t.Fatal("accepted unknown source address space")
	}
	if _, err := Uplift(tr.Source(), UpliftOptions{Profile: ProfileHDD4T, Jitter: 1.5}); err == nil {
		t.Fatal("accepted out-of-range jitter")
	}
}
