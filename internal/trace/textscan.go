package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Byte-level line scanning shared by the streaming text parsers (native
// CSV, MSR-Cambridge, HP Cello/SRT). The goal is constant memory and no
// per-line allocations: lines are served out of the bufio buffer when
// they fit, fields are sliced in place, and numbers parse straight from
// bytes. Real SNIA exports are Windows-generated, so the reader strips a
// UTF-8 BOM from the first line and a trailing CR from every line.

// maxLineLen bounds a single trace line; anything longer is corruption,
// not data.
const maxLineLen = 1 << 20

// utf8BOM is the byte-order mark Windows tools prepend to CSV exports.
var utf8BOM = []byte{0xEF, 0xBB, 0xBF}

// lineReader yields one trimmed line at a time from an io.Reader.
type lineReader struct {
	br     *bufio.Reader
	long   []byte // spill buffer for lines crossing the bufio boundary
	lineNo int
	first  bool // BOM strip pending
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{br: bufio.NewReaderSize(r, 1<<16), first: true}
}

// reset rebinds the reader (after a seek) and rewinds line accounting.
func (lr *lineReader) reset(r io.Reader) {
	lr.br.Reset(r)
	lr.lineNo = 0
	lr.first = true
}

// next returns the next line with the trailing LF/CRLF removed, valid
// until the following call. io.EOF signals a clean end; a final line
// without a newline is still returned.
func (lr *lineReader) next() ([]byte, error) {
	line, err := lr.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Long line: spill into the side buffer.
		lr.long = append(lr.long[:0], line...)
		for err == bufio.ErrBufferFull {
			if len(lr.long) > maxLineLen {
				return nil, fmt.Errorf("%w: line %d longer than %d bytes", ErrBadFormat, lr.lineNo+1, maxLineLen)
			}
			line, err = lr.br.ReadSlice('\n')
			lr.long = append(lr.long, line...)
		}
		line = lr.long
	}
	if err != nil && (err != io.EOF || len(line) == 0) {
		return nil, err
	}
	lr.lineNo++
	if lr.first {
		lr.first = false
		if len(line) >= 3 && line[0] == utf8BOM[0] && line[1] == utf8BOM[1] && line[2] == utf8BOM[2] {
			line = line[3:]
		}
	}
	// Trim the newline and a Windows CR.
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// splitByte splits line on sep into out (reused), without copying.
func splitByte(line []byte, sep byte, out [][]byte) [][]byte {
	out = out[:0]
	start := 0
	for i := 0; i < len(line); i++ {
		if line[i] == sep {
			out = append(out, line[start:i])
			start = i + 1
		}
	}
	return append(out, line[start:])
}

// splitSpace splits line on runs of spaces/tabs into out (reused).
func splitSpace(line []byte, out [][]byte) [][]byte {
	out = out[:0]
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			out = append(out, line[start:i])
		}
	}
	return out
}

// trimBytes drops surrounding spaces and tabs.
func trimBytes(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// parseIntBytes parses a base-10 signed integer without allocating,
// rejecting empty input, stray characters and int64 overflow.
func parseIntBytes(b []byte) (int64, bool) {
	b = trimBytes(b)
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, false
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := int64(c - '0')
		if v > (1<<63-1-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	if neg {
		v = -v
	}
	return v, true
}

// parseFloatBytes parses a plain fixed-notation float (the shape of SRT
// timestamps) without allocating; no exponent support.
func parseFloatBytes(b []byte) (float64, bool) {
	b = trimBytes(b)
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, false
	}
	var v float64
	seenDigit := false
	i := 0
	for ; i < len(b) && b[i] != '.'; i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + float64(c-'0')
		seenDigit = true
	}
	if i < len(b) { // fraction
		i++
		scale := 0.1
		for ; i < len(b); i++ {
			c := b[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			v += float64(c-'0') * scale
			scale /= 10
			seenDigit = true
		}
	}
	if !seenDigit {
		return 0, false
	}
	if neg {
		v = -v
	}
	return v, true
}

// bulkWriter batches text output with allocation-free integer
// formatting, for the format writers that emit millions of lines.
type bulkWriter struct {
	bw  *bufio.Writer
	tmp []byte
	err error
}

func newBulkWriter(w io.Writer) *bulkWriter {
	return &bulkWriter{bw: bufio.NewWriterSize(w, 1<<16), tmp: make([]byte, 0, 24)}
}

func (b *bulkWriter) int(v int64) {
	if b.err != nil {
		return
	}
	b.tmp = strconv.AppendInt(b.tmp[:0], v, 10)
	_, b.err = b.bw.Write(b.tmp)
}

func (b *bulkWriter) str(s string) {
	if b.err != nil {
		return
	}
	_, b.err = b.bw.WriteString(s)
}

func (b *bulkWriter) byte(c byte) {
	if b.err != nil {
		return
	}
	b.err = b.bw.WriteByte(c)
}

func (b *bulkWriter) flush() error {
	if b.err != nil {
		return b.err
	}
	return b.bw.Flush()
}

// equalFoldASCII compares a byte field against an ASCII string ignoring
// case, without allocating.
func equalFoldASCII(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c, d := b[i], s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if 'A' <= d && d <= 'Z' {
			d += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}
