package trace

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// This file decodes the HP Cello / SRT text export layout, the lineage
// of the paper's cello92/cello99 disk traces (Ruemmler & Wilkes' SRT
// trace format, as printed by srt2txt-style tools): one whitespace-
// separated record per line,
//
//	<timestamp> <device> <offset> <size> <R|W> [extra columns...]
//
// where timestamp is in seconds (fixed-notation float, absolute epoch
// values tolerated — arrivals are normalized to start at zero), device
// is an integer identifier, offset and size are in bytes, and the
// direction flag accepts R/W, r/w and Read/Write. Extra trailing
// columns (queue depths, completion times) are ignored. Comment lines
// (#) and blank lines are skipped; records are expected in time order
// with small inversions clamped, as in the published files.

// CelloOptions filters an SRT text decode.
type CelloOptions struct {
	// Name labels the resulting trace.
	Name string
	// Device keeps only records of this device (-1 = all).
	Device int
	// MaxRecords caps the decode (0 = unlimited).
	MaxRecords int
}

// CelloSource streams records out of an HP Cello/SRT text export in
// constant memory.
type CelloSource struct {
	opts   CelloOptions
	r      io.Reader
	lr     *lineReader
	closer io.Closer
	fields [][]byte

	base     float64
	haveBase bool
	prev     time.Duration
	maxEnd   int64
	n        int
	sticky   error
}

// NewCelloSource wraps a reader as a streaming SRT text decoder. Reset
// requires the reader to implement io.Seeker.
func NewCelloSource(r io.Reader, opts CelloOptions) *CelloSource {
	return &CelloSource{opts: opts, r: r, lr: newLineReader(r)}
}

// OpenCello opens an SRT text file as a resettable, closable source.
// The options' Name defaults to the path.
func OpenCello(path string, opts CelloOptions) (*CelloSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if opts.Name == "" {
		opts.Name = path
	}
	src := NewCelloSource(f, opts)
	src.closer = f
	return src, nil
}

// Next implements Source.
//
//scrub:hotpath
func (c *CelloSource) Next(rec *Record) error {
	if c.sticky != nil {
		return c.sticky
	}
	if c.opts.MaxRecords > 0 && c.n >= c.opts.MaxRecords {
		return io.EOF
	}
	for {
		line, err := c.lr.next()
		if err == io.EOF {
			return io.EOF
		}
		if err != nil {
			c.sticky = err
			return err
		}
		line = trimBytes(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		ok, err := c.parseLine(line, rec)
		if err != nil {
			c.sticky = err
			return err
		}
		if !ok {
			continue
		}
		c.n++
		return nil
	}
}

// parseLine decodes one SRT text record into rec; ok reports whether it
// passed the device filter.
func (c *CelloSource) parseLine(line []byte, rec *Record) (ok bool, err error) {
	c.fields = splitSpace(line, c.fields)
	if len(c.fields) < 5 {
		return false, c.errf("want >= 5 fields, got %d", len(c.fields))
	}
	ts, okv := parseFloatBytes(c.fields[0])
	if !okv || ts < 0 || math.IsInf(ts, 0) || math.IsNaN(ts) {
		return false, c.errf("timestamp %q", c.fields[0])
	}
	dev, okv := parseIntBytes(c.fields[1])
	if !okv || dev < 0 {
		return false, c.errf("device %q", c.fields[1])
	}
	if c.opts.Device >= 0 && dev != int64(c.opts.Device) {
		return false, nil
	}
	offset, okv := parseIntBytes(c.fields[2])
	if !okv || offset < 0 {
		return false, c.errf("offset %q", c.fields[2])
	}
	size, okv := parseIntBytes(c.fields[3])
	if !okv || size <= 0 || size > math.MaxInt64-511 {
		return false, c.errf("size %q", c.fields[3])
	}
	var write bool
	switch dir := c.fields[4]; {
	case equalFoldASCII(dir, "r") || equalFoldASCII(dir, "read"):
		write = false
	case equalFoldASCII(dir, "w") || equalFoldASCII(dir, "write"):
		write = true
	default:
		return false, c.errf("direction %q", c.fields[4])
	}
	lba := offset / 512
	sectors := (size + 511) / 512
	if sectors > math.MaxInt64-lba {
		return false, c.errf("extent [%d,+%d) out of range", lba, sectors)
	}
	if !c.haveBase {
		c.base = ts
		c.haveBase = true
	}
	span := ts - c.base
	if span > float64(math.MaxInt64)/float64(time.Second) {
		return false, c.errf("timestamp %v overflows the trace span", ts)
	}
	arrival := time.Duration(span * float64(time.Second))
	if arrival < c.prev {
		arrival = c.prev // clamp the occasional inversion
	}
	c.prev = arrival
	rec.Arrival = arrival
	rec.LBA = lba
	rec.Sectors = sectors
	rec.Write = write
	if end := lba + sectors; end > c.maxEnd {
		c.maxEnd = end
	}
	return true, nil
}

// errf builds a line-annotated ErrBadFormat.
func (c *CelloSource) errf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrBadFormat, c.lr.lineNo, fmt.Sprintf(format, args...))
}

// Reset implements Source.
func (c *CelloSource) Reset() error {
	sk, ok := c.r.(io.Seeker)
	if !ok {
		return ErrNotResettable
	}
	if _, err := sk.Seek(0, io.SeekStart); err != nil {
		return err
	}
	c.lr.reset(c.r)
	c.base, c.haveBase, c.prev, c.maxEnd, c.n, c.sticky = 0, false, 0, 0, 0, nil
	return nil
}

// DiskSectors implements Source: the largest extent end seen so far.
func (c *CelloSource) DiskSectors() int64 { return c.maxEnd }

// Name implements Source.
func (c *CelloSource) Name() string { return c.opts.Name }

// Close closes the underlying file when the source was opened from a
// path; otherwise it is a no-op.
func (c *CelloSource) Close() error {
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// WriteCello encodes a source in the 5-column SRT text layout parsed by
// CelloSource (timestamp in seconds at microsecond precision) — the
// fixture-side complement of the decoder, used by tests and the
// scrubbench trace suite to fabricate real-format files of any size
// without redistribution concerns.
func WriteCello(w io.Writer, src Source, device int) error {
	bw := newBulkWriter(w)
	var rec Record
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		us := int64(rec.Arrival / time.Microsecond)
		bw.int(us / 1e6)
		bw.byte('.')
		for div := int64(100_000); div >= 10; div /= 10 {
			if us%1e6 < div {
				bw.byte('0')
			}
		}
		bw.int(us % 1e6)
		bw.byte(' ')
		bw.int(int64(device))
		bw.byte(' ')
		bw.int(rec.LBA * 512)
		bw.byte(' ')
		bw.int(rec.Sectors * 512)
		if rec.Write {
			bw.str(" W\n")
		} else {
			bw.str(" R\n")
		}
		if bw.err != nil {
			return bw.err
		}
	}
	return bw.flush()
}
