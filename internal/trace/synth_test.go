package trace

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/stats"
)

// idleGaps extracts the positive inter-arrival gaps, the idle-interval
// methodology of the Table II analysis (burst members share timestamps,
// so only inter-burst gaps survive).
func idleGaps(tr *Trace) []time.Duration {
	return stats.IdleGaps(tr.Arrivals())
}

func TestSynthDeterministic(t *testing.T) {
	spec, _ := ByName("HPc3t3d0")
	a := spec.Generate(42, time.Hour)
	b := spec.Generate(42, time.Hour)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := spec.Generate(43, time.Hour)
	if len(c.Records) == len(a.Records) {
		same := true
		for i := range c.Records {
			if c.Records[i] != a.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestSynthArrivalsMonotone(t *testing.T) {
	for _, spec := range Catalog()[:4] {
		tr := spec.Generate(1, 30*time.Minute)
		prev := time.Duration(-1)
		for i, r := range tr.Records {
			if r.Arrival < prev {
				t.Fatalf("%s: arrival %d went backwards", spec.Name, i)
			}
			prev = r.Arrival
			if r.LBA < 0 || r.Sectors <= 0 || r.LBA+r.Sectors > tr.DiskSectors {
				t.Fatalf("%s: bad extent %+v", spec.Name, r)
			}
		}
	}
}

func TestSynthRequestVolume(t *testing.T) {
	// Generated request rate should be within 3x of the nominal rate
	// (diurnal modulation makes single hours vary widely).
	for _, name := range []string{"MSRusr1", "HPc6t8d0"} {
		spec, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		dur := 24 * time.Hour
		var count int64
		spec.Stream(7, dur, func(Record) bool { count++; return true })
		wantPerHour := float64(spec.NominalRequests) / spec.NominalDuration.Hours()
		gotPerHour := float64(count) / dur.Hours()
		if gotPerHour < wantPerHour/3 || gotPerHour > wantPerHour*3 {
			t.Fatalf("%s: %.0f req/h, want within 3x of %.0f", name, gotPerHour, wantPerHour)
		}
	}
}

func TestSynthIdleCalibration(t *testing.T) {
	// The generated idle-interval distribution must land near the Table II
	// targets: mean within 2.5x, CoV within 3x, and the CoV ordering of
	// low- vs high-variability disks preserved.
	cases := []struct {
		name  string
		hours float64
	}{
		{"MSRusr1", 6},
		{"HPc3t3d0", 12},
		{"HPc6t5d1", 12},
	}
	covs := map[string]float64{}
	for _, c := range cases {
		spec, _ := ByName(c.name)
		tr := spec.Generate(3, time.Duration(c.hours*float64(time.Hour)))
		idles := idleGaps(tr)
		if len(idles) < 100 {
			t.Fatalf("%s: only %d idle intervals", c.name, len(idles))
		}
		xs := make([]float64, len(idles))
		for i, d := range idles {
			xs[i] = d.Seconds()
		}
		mean := stats.Mean(xs)
		cov := stats.CoV(xs)
		covs[c.name] = cov
		wantMean := spec.MeanIdle.Seconds()
		if mean < wantMean/2 || mean > wantMean*2 {
			t.Errorf("%s: mean idle %.4fs, want within 2x of %.4fs", c.name, mean, wantMean)
		}
		if cov < spec.IdleCoV/3 || cov > spec.IdleCoV*3 {
			t.Errorf("%s: CoV %.1f, want within 3x of %.1f", c.name, cov, spec.IdleCoV)
		}
	}
	if covs["HPc6t5d1"] <= covs["HPc3t3d0"] {
		t.Errorf("CoV ordering lost: HPc6t5d1 %.1f <= HPc3t3d0 %.1f",
			covs["HPc6t5d1"], covs["HPc3t3d0"])
	}
}

func TestSynthTPCCNearExponential(t *testing.T) {
	spec, _ := ByName("TPCdisk66")
	tr := spec.Generate(5, 120*time.Second)
	gaps := stats.IdleGaps(tr.Arrivals())
	xs := make([]float64, len(gaps))
	for i, g := range gaps {
		xs[i] = g.Seconds()
	}
	cov := stats.CoV(xs)
	// Table II reports 0.8608; memorylessness is the paper's point.
	if cov < 0.6 || cov > 1.25 {
		t.Fatalf("TPC-C gap CoV = %.3f, want ~0.86", cov)
	}
	mean := stats.Mean(xs)
	if mean < 0.0005 || mean > 0.004 {
		t.Fatalf("TPC-C mean gap = %.5fs, want ~0.0014", mean)
	}
}

func TestSynthHeavyTailAndHazard(t *testing.T) {
	spec, _ := ByName("MSRsrc11")
	tr := spec.Generate(11, 12*time.Hour)
	a := stats.NewIdleAnalysis(idleGaps(tr))
	// Fig. 10's claim: the largest 15% of intervals carry > 80% of idle
	// time (for src11 the skew is strong).
	if share := a.TailShare(0.15); share < 0.8 {
		t.Fatalf("top 15%% intervals carry %.2f of idle time, want > 0.8", share)
	}
	// Fig. 11's claim: expected remaining idle time increases with time
	// already idle.
	if !a.HazardDecreasing([]float64{0.01, 0.1, 1, 10}, 0.1) {
		t.Fatal("synthetic src11 lacks decreasing hazard rates")
	}
	// Fig. 13's claim: after waiting 100ms, well over half the idle time
	// remains usable.
	if u := a.UsableAfterWait(0.1); u < 0.6 {
		t.Fatalf("usable after 100ms = %.2f, want > 0.6", u)
	}
}

func TestSynthAutocorrelation(t *testing.T) {
	spec, _ := ByName("MSRusr1")
	tr := spec.Generate(13, 4*time.Hour)
	idles := idleGaps(tr)
	xs := make([]float64, len(idles))
	for i, d := range idles {
		xs[i] = math.Log(d.Seconds()) // ACF on log-gaps, where AR(1) lives
	}
	if !stats.HasStrongAutocorrelation(xs, 10) {
		t.Fatal("synthetic MSR trace lacks autocorrelation")
	}
}

func TestSynthPeriodicity(t *testing.T) {
	spec, _ := ByName("HPc3t3d0")
	tr := spec.Generate(17, 3*24*time.Hour)
	period, _ := stats.DetectPeriod(tr.HourlyCounts())
	if period != 24 {
		t.Fatalf("detected period %dh, want 24h", period)
	}
}

func TestSynthStreamEarlyStop(t *testing.T) {
	spec, _ := ByName("MSRusr1")
	n := 0
	spec.Stream(1, time.Hour, func(Record) bool {
		n++
		return n < 100
	})
	if n != 100 {
		t.Fatalf("stream did not stop at 100, got %d", n)
	}
}

func TestSynthDefaults(t *testing.T) {
	var s Synth
	d := s.withDefaults()
	if d.MeanIdle <= 0 || d.IdleCoV <= 0 || d.Dist == 0 || d.DiskSectors <= 0 ||
		d.ReqSectors <= 0 || d.NominalDuration <= 0 {
		t.Fatalf("defaults not filled: %+v", d)
	}
	if s.BurstLen() != 16 {
		t.Fatalf("default burst len = %v", s.BurstLen())
	}
	// Generation with an all-default spec should still work.
	tr := s.Generate(1, time.Minute)
	if tr == nil {
		t.Fatal("nil trace")
	}
}

func TestBurstLenFixedPoint(t *testing.T) {
	spec, _ := ByName("MSRsrc11")
	bl := spec.BurstLen()
	// Consistency: bursts * burstLen = requests (IntraGap is zero, so a
	// burst occupies no time).
	bursts := spec.NominalDuration.Seconds() / spec.MeanIdle.Seconds()
	got := bursts * bl
	if math.Abs(got-float64(spec.NominalRequests)) > float64(spec.NominalRequests)/100 {
		t.Fatalf("fixed point off: %f vs %d", got, spec.NominalRequests)
	}
	// With a non-zero intra gap the burst length must grow to compensate.
	spec.IntraGap = 2 * time.Millisecond
	if spec.BurstLen() <= bl {
		t.Fatal("intra gap did not increase burst length")
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("catalog has %d entries, want 10 (Table I)", len(cat))
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if s.Name == "" || s.Description == "" || s.NominalRequests <= 0 {
			t.Fatalf("incomplete entry %+v", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate %s", s.Name)
		}
		seen[s.Name] = true
	}
	if _, ok := ByName("MSRusr2"); !ok {
		t.Fatal("MSRusr2 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName found a ghost")
	}
}

func TestFig9Catalog(t *testing.T) {
	cat := Fig9Catalog()
	if len(cat) != 63 {
		t.Fatalf("Fig9 catalog has %d disks, want 63", len(cat))
	}
	noPeriod := 0
	daily := 0
	for _, d := range cat {
		switch d.PeriodHours {
		case 1:
			noPeriod++
		case 24:
			daily++
		}
	}
	if noPeriod < 3 {
		t.Fatalf("only %d aperiodic disks", noPeriod)
	}
	if daily < 40 {
		t.Fatalf("only %d daily disks; the paper says 24h dominates", daily)
	}
}

func TestFig9HourlySeriesDetectable(t *testing.T) {
	cat := Fig9Catalog()
	// A daily disk and an aperiodic disk must be classified correctly.
	for _, d := range cat {
		if d.Name != "MSRsrc11" && d.Name != "MSRwdev3" {
			continue
		}
		series := d.HourlySeries(21, 14*24)
		period, _ := stats.DetectPeriod(series)
		if d.PeriodHours == 24 && period != 24 {
			t.Fatalf("%s: detected %dh, want 24", d.Name, period)
		}
		if d.PeriodHours == 1 && period != 1 {
			t.Fatalf("%s: detected %dh, want none", d.Name, period)
		}
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range []float64{0.5, 1.35, 4} {
		n := 200000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			x := gammaSample(rng, k)
			sum += x
			sum2 += x * x
		}
		mean := sum / float64(n)
		variance := sum2/float64(n) - mean*mean
		if math.Abs(mean-k) > 0.05*k {
			t.Fatalf("gamma(%v) mean = %v", k, mean)
		}
		if math.Abs(variance-k) > 0.1*k {
			t.Fatalf("gamma(%v) var = %v", k, variance)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const want = 36.0
	n := 50000
	total := 0
	for i := 0; i < n; i++ {
		total += geometric(rng, want)
	}
	got := float64(total) / float64(n)
	if math.Abs(got-want) > 1 {
		t.Fatalf("geometric mean = %v, want ~%v", got, want)
	}
	if geometric(rng, 0) != 0 || geometric(rng, -1) != 0 {
		t.Fatal("degenerate geometric wrong")
	}
}

func TestRateModNeutralWithoutPeriod(t *testing.T) {
	s := Synth{PeriodHours: 0, DiurnalAmp: 0.5}
	if s.rateMod(time.Hour) != 1 {
		t.Fatal("aperiodic spec modulated")
	}
	s = Synth{PeriodHours: 24, DiurnalAmp: 0.5}
	hi := s.rateMod(0)              // cos=1: longest gaps
	lo := s.rateMod(12 * time.Hour) // cos=-1: shortest gaps
	mid := s.rateMod(6 * time.Hour) // cos=0
	if !(hi > mid && mid > lo) {
		t.Fatalf("modulation not ordered: %v %v %v", hi, mid, lo)
	}
	if math.Abs(mid-1) > 1e-9 {
		t.Fatalf("mid modulation = %v, want 1", mid)
	}
}
