package trace

import (
	"io"
	"testing"
	"time"
)

// drain pulls every record out of a source.
func drain(t *testing.T, src Source) []Record {
	t.Helper()
	var out []Record
	var rec Record
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, rec)
	}
}

func sampleTrace() *Trace {
	return &Trace{
		Name:        "sample",
		DiskSectors: 4096,
		Records: []Record{
			{Arrival: 0, LBA: 0, Sectors: 8},
			{Arrival: time.Millisecond, LBA: 8, Sectors: 8, Write: true},
			{Arrival: 2 * time.Millisecond, LBA: 1024, Sectors: 16},
			{Arrival: 5 * time.Millisecond, LBA: 1040, Sectors: 16, Write: true},
		},
	}
}

func TestSliceSourceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	src := tr.Source()
	got := drain(t, src)
	if len(got) != len(tr.Records) {
		t.Fatalf("drained %d records, want %d", len(got), len(tr.Records))
	}
	for i := range got {
		if got[i] != tr.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], tr.Records[i])
		}
	}
	if src.DiskSectors() != tr.DiskSectors || src.Name() != tr.Name {
		t.Fatalf("metadata lost: %d %q", src.DiskSectors(), src.Name())
	}
	// Drained source stays at EOF until Reset.
	var rec Record
	if err := src.Next(&rec); err != io.EOF {
		t.Fatalf("post-EOF Next = %v", err)
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if again := drain(t, src); len(again) != len(tr.Records) {
		t.Fatalf("after Reset drained %d records", len(again))
	}
}

func TestReadAllDerivesDiskSectors(t *testing.T) {
	recs := []Record{{LBA: 100, Sectors: 10}, {Arrival: time.Second, LBA: 5000, Sectors: 24}}
	src := NewSliceSource("x", 0, recs)
	tr, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.DiskSectors != 5024 {
		t.Fatalf("derived DiskSectors = %d, want 5024", tr.DiskSectors)
	}
}

func TestReadAllResetsPartiallyConsumed(t *testing.T) {
	tr := sampleTrace()
	src := tr.Source()
	var rec Record
	if err := src.Next(&rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("ReadAll after partial consume = %d records, want %d", len(got.Records), len(tr.Records))
	}
}

func TestEachArrivalMatchesArrivals(t *testing.T) {
	tr := sampleTrace()
	want := tr.Arrivals()
	var got []time.Duration
	if err := EachArrival(tr.Source(), func(d time.Duration) bool {
		got = append(got, d)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("arrival %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	if err := EachArrival(tr.Source(), func(time.Duration) bool { n++; return n < 2 }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("early stop visited %d arrivals", n)
	}
}

func TestCountAndLimit(t *testing.T) {
	tr := sampleTrace()
	n, last, err := Count(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || last != 5*time.Millisecond {
		t.Fatalf("Count = %d/%v", n, last)
	}
	lim := Limit(tr.Source(), 2)
	if got := drain(t, lim); len(got) != 2 {
		t.Fatalf("Limit(2) yielded %d records", len(got))
	}
	if err := lim.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, lim); len(got) != 2 {
		t.Fatalf("Limit(2) after Reset yielded %d records", len(got))
	}
	if Limit(tr.Source(), 0).(*SliceSource) == nil {
		t.Fatal("Limit(0) should return the source unchanged")
	}
}

// TestSynthSourceMatchesGenerate pins the tentpole compatibility claim:
// the pull iterator and the materializing generator are one generator.
func TestSynthSourceMatchesGenerate(t *testing.T) {
	for _, spec := range Catalog()[:3] {
		name := spec.Name
		dur := 2 * time.Hour
		if spec.NominalDuration < dur {
			dur = spec.NominalDuration
		}
		want := spec.Generate(42, dur)
		src := spec.Source(42, dur)
		got := drain(t, src)
		if len(got) != len(want.Records) {
			t.Fatalf("%s: source yielded %d records, Generate %d", name, len(got), len(want.Records))
		}
		for i := range got {
			if got[i] != want.Records[i] {
				t.Fatalf("%s: record %d differs: %+v vs %+v", name, i, got[i], want.Records[i])
			}
		}
		// Reset replays the identical sequence.
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
		again := drain(t, src)
		for i := range again {
			if again[i] != want.Records[i] {
				t.Fatalf("%s: post-Reset record %d differs", name, i)
			}
		}
	}
}
