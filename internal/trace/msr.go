package trace

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// This file decodes the SNIA MSR-Cambridge CSV format, the format of the
// real files behind Table I:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Timestamp is a Windows FILETIME (100 ns ticks since 1601-01-01),
// Type is "Read"/"Write", and Offset/Size are in bytes. Timestamps are
// normalized to start at zero; records are expected in timestamp order
// (small inversions, which occur in the published files, are clamped).
// Real exports are Windows-generated: a UTF-8 BOM and CRLF line endings
// are tolerated.

// MSROptions filters an MSR-format decode.
type MSROptions struct {
	// Name labels the resulting trace.
	Name string
	// Hostname keeps only records from this host ("" = all).
	Hostname string
	// DiskNumber keeps only this disk (-1 = all).
	DiskNumber int
	// MaxRecords caps the decode (0 = unlimited).
	MaxRecords int
}

// MSRSource streams records out of an MSR-Cambridge CSV in constant
// memory: one bufio buffer, no per-line allocations on the accept path.
type MSRSource struct {
	opts   MSROptions
	r      io.Reader
	lr     *lineReader
	closer io.Closer
	fields [][]byte

	base     int64
	haveBase bool
	prev     time.Duration
	maxEnd   int64
	n        int
	sticky   error
}

// NewMSRSource wraps a reader as a streaming MSR decoder. Reset requires
// the reader to implement io.Seeker (files do; pipes return
// ErrNotResettable).
func NewMSRSource(r io.Reader, opts MSROptions) *MSRSource {
	return &MSRSource{opts: opts, r: r, lr: newLineReader(r)}
}

// OpenMSR opens an MSR-Cambridge CSV file as a resettable, closable
// source. The options' Name defaults to the path.
func OpenMSR(path string, opts MSROptions) (*MSRSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if opts.Name == "" {
		opts.Name = path
	}
	src := NewMSRSource(f, opts)
	src.closer = f
	return src, nil
}

// Next implements Source: it scans to the next record passing the host
// and disk filters, normalizes its timestamp and returns it.
//
//scrub:hotpath
func (m *MSRSource) Next(rec *Record) error {
	if m.sticky != nil {
		return m.sticky
	}
	if m.opts.MaxRecords > 0 && m.n >= m.opts.MaxRecords {
		return io.EOF
	}
	for {
		line, err := m.lr.next()
		if err == io.EOF {
			return io.EOF
		}
		if err != nil {
			m.sticky = err
			return err
		}
		line = trimBytes(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		ok, err := m.parseLine(line, rec)
		if err != nil {
			m.sticky = err
			return err
		}
		if !ok {
			continue // filtered out
		}
		m.n++
		return nil
	}
}

// parseLine decodes one CSV line into rec, applying filters; ok reports
// whether the record passed them.
func (m *MSRSource) parseLine(line []byte, rec *Record) (ok bool, err error) {
	m.fields = splitByte(line, ',', m.fields)
	if len(m.fields) < 6 {
		return false, m.errf("want >= 6 fields, got %d", len(m.fields))
	}
	ticks, okv := parseIntBytes(m.fields[0])
	if !okv || ticks < 0 {
		return false, m.errf("timestamp %q", m.fields[0])
	}
	if m.opts.Hostname != "" && !equalFoldASCII(trimBytes(m.fields[1]), m.opts.Hostname) {
		return false, nil
	}
	diskNo, okv := parseIntBytes(m.fields[2])
	if !okv {
		return false, m.errf("disk number %q", m.fields[2])
	}
	if m.opts.DiskNumber >= 0 && diskNo != int64(m.opts.DiskNumber) {
		return false, nil
	}
	var write bool
	switch typ := trimBytes(m.fields[3]); {
	case equalFoldASCII(typ, "read"):
		write = false
	case equalFoldASCII(typ, "write"):
		write = true
	default:
		return false, m.errf("type %q", m.fields[3])
	}
	offset, okv := parseIntBytes(m.fields[4])
	if !okv || offset < 0 {
		return false, m.errf("offset %q", m.fields[4])
	}
	size, okv := parseIntBytes(m.fields[5])
	if !okv || size <= 0 || size > math.MaxInt64-511 {
		return false, m.errf("size %q", m.fields[5])
	}
	lba := offset / 512
	sectors := (size + 511) / 512
	if sectors > math.MaxInt64-lba {
		return false, m.errf("extent [%d,+%d) out of range", lba, sectors)
	}
	if !m.haveBase {
		m.base = ticks
		m.haveBase = true
	}
	if ticks-m.base > math.MaxInt64/100 {
		return false, m.errf("timestamp %d overflows the trace span", ticks)
	}
	arrival := time.Duration(ticks-m.base) * 100 * time.Nanosecond
	if arrival < m.prev {
		arrival = m.prev // clamp the occasional inversion
	}
	m.prev = arrival
	rec.Arrival = arrival
	rec.LBA = lba
	rec.Sectors = sectors
	rec.Write = write
	if end := lba + sectors; end > m.maxEnd {
		m.maxEnd = end
	}
	return true, nil
}

// errf builds a line-annotated ErrBadFormat.
func (m *MSRSource) errf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrBadFormat, m.lr.lineNo, fmt.Sprintf(format, args...))
}

// Reset implements Source.
func (m *MSRSource) Reset() error {
	sk, ok := m.r.(io.Seeker)
	if !ok {
		return ErrNotResettable
	}
	if _, err := sk.Seek(0, io.SeekStart); err != nil {
		return err
	}
	m.lr.reset(m.r)
	m.base, m.haveBase, m.prev, m.maxEnd, m.n, m.sticky = 0, false, 0, 0, 0, nil
	return nil
}

// DiskSectors implements Source: the largest extent end seen so far.
func (m *MSRSource) DiskSectors() int64 { return m.maxEnd }

// Name implements Source.
func (m *MSRSource) Name() string { return m.opts.Name }

// Close closes the underlying file when the source was opened from a
// path; otherwise it is a no-op.
func (m *MSRSource) Close() error {
	if m.closer != nil {
		return m.closer.Close()
	}
	return nil
}

// ReadMSR decodes a whole MSR-Cambridge stream at once — a shim over
// MSRSource for callers that want the materialized *Trace. It errors on
// an empty decode, matching the historical contract.
func ReadMSR(r io.Reader, opts MSROptions) (*Trace, error) {
	src := NewMSRSource(r, opts)
	t := &Trace{Name: opts.Name}
	var rec Record
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
	if len(t.Records) == 0 {
		return nil, fmt.Errorf("%w: no records", ErrBadFormat)
	}
	t.DiskSectors = src.DiskSectors()
	return t, nil
}

// WriteMSR encodes a source in the 7-column MSR-Cambridge CSV layout
// (ResponseTime written as zero) — the fixture-side complement of
// MSRSource, used by tests and the scrubbench trace suite to fabricate
// real-format files of any size without redistribution concerns.
func WriteMSR(w io.Writer, src Source, hostname string, diskNumber int) error {
	bw := newBulkWriter(w)
	var rec Record
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		// 100ns ticks; arrivals are durations, so the epoch is zero.
		bw.int(int64(rec.Arrival / (100 * time.Nanosecond)))
		bw.byte(',')
		bw.str(hostname)
		bw.byte(',')
		bw.int(int64(diskNumber))
		if rec.Write {
			bw.str(",Write,")
		} else {
			bw.str(",Read,")
		}
		bw.int(rec.LBA * 512)
		bw.byte(',')
		bw.int(rec.Sectors * 512)
		bw.str(",0\r\n") // real exports are CRLF-terminated
		if bw.err != nil {
			return bw.err
		}
	}
	return bw.flush()
}
