package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// ReadMSR decodes a trace in the SNIA MSR-Cambridge CSV format, the
// format of the real files behind Table I:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Timestamp is a Windows FILETIME (100 ns ticks since 1601-01-01),
// Type is "Read"/"Write", and Offset/Size are in bytes. Timestamps are
// normalized to start at zero; records are expected in timestamp order
// (small inversions, which occur in the published files, are clamped).
//
// Options filters and shapes the decode.
func ReadMSR(r io.Reader, opts MSROptions) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{Name: opts.Name}
	var (
		base    int64
		haveOne bool
		prev    time.Duration
		lineNo  int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, host, diskNo, err := parseMSRLine(line)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
		}
		if opts.Hostname != "" && !strings.EqualFold(host, opts.Hostname) {
			continue
		}
		if opts.DiskNumber >= 0 && diskNo != opts.DiskNumber {
			continue
		}
		ticks := rec.rawTicks
		if !haveOne {
			base = ticks
			haveOne = true
		}
		if ticks-base > math.MaxInt64/100 {
			return nil, fmt.Errorf("%w: line %d: timestamp %d overflows the trace span", ErrBadFormat, lineNo, ticks)
		}
		arrival := time.Duration(ticks-base) * 100 * time.Nanosecond
		if arrival < prev {
			arrival = prev // clamp the occasional inversion
		}
		prev = arrival
		t.Records = append(t.Records, Record{
			Arrival: arrival,
			LBA:     rec.lba,
			Sectors: rec.sectors,
			Write:   rec.write,
		})
		if end := rec.lba + rec.sectors; end > t.DiskSectors {
			t.DiskSectors = end
		}
		if opts.MaxRecords > 0 && len(t.Records) >= opts.MaxRecords {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read msr: %w", err)
	}
	if !haveOne {
		return nil, fmt.Errorf("%w: no records", ErrBadFormat)
	}
	return t, nil
}

// MSROptions filters an MSR-format decode.
type MSROptions struct {
	// Name labels the resulting trace.
	Name string
	// Hostname keeps only records from this host ("" = all).
	Hostname string
	// DiskNumber keeps only this disk (-1 = all).
	DiskNumber int
	// MaxRecords caps the decode (0 = unlimited).
	MaxRecords int
}

type msrRecord struct {
	rawTicks int64
	lba      int64
	sectors  int64
	write    bool
}

func parseMSRLine(line string) (msrRecord, string, int, error) {
	var rec msrRecord
	parts := strings.Split(line, ",")
	if len(parts) < 6 {
		return rec, "", 0, fmt.Errorf("want >= 6 fields, got %d", len(parts))
	}
	ticks, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil || ticks < 0 {
		return rec, "", 0, fmt.Errorf("timestamp %q", parts[0])
	}
	rec.rawTicks = ticks
	host := strings.TrimSpace(parts[1])
	diskNo, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return rec, "", 0, fmt.Errorf("disk number: %v", err)
	}
	switch strings.ToLower(strings.TrimSpace(parts[3])) {
	case "read":
		rec.write = false
	case "write":
		rec.write = true
	default:
		return rec, "", 0, fmt.Errorf("type %q", parts[3])
	}
	offset, err := strconv.ParseInt(strings.TrimSpace(parts[4]), 10, 64)
	if err != nil || offset < 0 {
		return rec, "", 0, fmt.Errorf("offset %q", parts[4])
	}
	size, err := strconv.ParseInt(strings.TrimSpace(parts[5]), 10, 64)
	if err != nil || size <= 0 || size > math.MaxInt64-511 {
		return rec, "", 0, fmt.Errorf("size %q", parts[5])
	}
	rec.lba = offset / 512
	rec.sectors = (size + 511) / 512
	if rec.sectors > math.MaxInt64-rec.lba {
		return rec, "", 0, fmt.Errorf("extent [%d,+%d) out of range", rec.lba, rec.sectors)
	}
	return rec, host, diskNo, nil
}
