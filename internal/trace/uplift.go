package trace

import (
	"fmt"
	"math/rand"
	"time"
)

// Trace uplift, in the TraceTracker tradition: the paper's traces were
// captured on 2000s-era disks, so replaying them against a modern
// device model needs the address space stretched onto the new capacity
// and the arrival process rescaled (trace speedup/slowdown). The
// transform preserves what the scrubbing analysis depends on — request
// ordering, sequentiality runs, the shape of the idle-gap distribution
// — while mapping extents proportionally onto the target disk and
// scaling gaps by a constant factor with optional bounded jitter to
// de-synchronize lock-step arrivals. Jitter draws from a seeded RNG:
// the same seed yields the identical uplifted trace, and Reset replays
// it exactly.

// DeviceProfile describes the target device of an uplift.
type DeviceProfile struct {
	// Name labels the profile.
	Name string
	// Sectors is the target address space (512-byte sectors).
	Sectors int64
}

// Canned profiles for common uplift targets.
var (
	// ProfileHDD300 matches the paper's 300 GB disks (no address change
	// for same-era replays).
	ProfileHDD300 = DeviceProfile{Name: "hdd-300g", Sectors: 585937500}
	// ProfileHDD4T is a modern 4 TB nearline disk.
	ProfileHDD4T = DeviceProfile{Name: "hdd-4t", Sectors: 7814037168}
	// ProfileSSD1T is a 1 TB solid-state device.
	ProfileSSD1T = DeviceProfile{Name: "ssd-1t", Sectors: 1953525168}
)

// UpliftOptions parameterizes an uplift transform.
type UpliftOptions struct {
	// Profile is the target device; Sectors must be positive.
	Profile DeviceProfile
	// SourceSectors is the source address space. Zero means take it from
	// the source's DiskSectors at construction — fine for caches, slices
	// and the generator, which know it up front; parser sources that
	// learn the extent as they scan need it passed explicitly.
	SourceSectors int64
	// TimeScale multiplies inter-arrival gaps (0.5 = replay twice as
	// fast). Zero means 1.
	TimeScale float64
	// Jitter, in [0,1), bounds the per-gap multiplicative jitter: each
	// gap is scaled by a uniform draw from [1-Jitter, 1+Jitter]. Zero
	// disables it.
	Jitter float64
	// Seed seeds the jitter RNG; the same seed reproduces the same
	// uplifted trace.
	Seed int64
}

// UpliftSource applies an uplift transform to an inner source, itself a
// constant-memory Source.
type UpliftSource struct {
	src  Source
	opts UpliftOptions

	rng     *rand.Rand
	ratio   float64 // target/source address scale
	align   int64
	prevIn  time.Duration
	prevOut time.Duration
}

// Uplift wraps src with the transform. It errors when the profile is
// empty or the source address space cannot be determined.
func Uplift(src Source, opts UpliftOptions) (*UpliftSource, error) {
	if opts.Profile.Sectors <= 0 {
		return nil, fmt.Errorf("trace: uplift: profile %q has no address space", opts.Profile.Name)
	}
	if opts.SourceSectors == 0 {
		opts.SourceSectors = src.DiskSectors()
	}
	if opts.SourceSectors <= 0 {
		return nil, fmt.Errorf("trace: uplift: source %q address space unknown; set SourceSectors", src.Name())
	}
	if opts.TimeScale == 0 {
		opts.TimeScale = 1
	}
	if opts.TimeScale < 0 || opts.Jitter < 0 || opts.Jitter >= 1 {
		return nil, fmt.Errorf("trace: uplift: invalid TimeScale %v / Jitter %v", opts.TimeScale, opts.Jitter)
	}
	u := &UpliftSource{
		src:   src,
		opts:  opts,
		ratio: float64(opts.Profile.Sectors) / float64(opts.SourceSectors),
		align: 8, // keep 4 KB alignment through the remap
	}
	u.rewind()
	return u, nil
}

// rewind re-arms the deterministic jitter stream and gap accounting.
func (u *UpliftSource) rewind() {
	u.rng = rand.New(rand.NewSource(u.opts.Seed))
	u.prevIn, u.prevOut = 0, 0
}

// Next implements Source.
//
//scrub:hotpath
func (u *UpliftSource) Next(rec *Record) error {
	if err := u.src.Next(rec); err != nil {
		return err
	}
	// Time: scale the gap, not the absolute arrival, so jitter never
	// reorders requests.
	gap := float64(rec.Arrival-u.prevIn) * u.opts.TimeScale
	if u.opts.Jitter > 0 && gap > 0 {
		gap *= 1 + u.opts.Jitter*(2*u.rng.Float64()-1)
	}
	u.prevIn = rec.Arrival
	out := u.prevOut + time.Duration(gap)
	if out < u.prevOut {
		out = u.prevOut
	}
	u.prevOut = out
	rec.Arrival = out

	// Space: proportional remap, 4 KB aligned, extent clamped into the
	// target device.
	lba := int64(float64(rec.LBA) * u.ratio)
	lba -= lba % u.align
	if lba < 0 {
		lba = 0
	}
	max := u.opts.Profile.Sectors
	if rec.Sectors > max {
		rec.Sectors = max
	}
	if lba+rec.Sectors > max {
		lba = max - rec.Sectors
		lba -= lba % u.align
		if lba < 0 {
			lba = 0
		}
	}
	rec.LBA = lba
	return nil
}

// Reset implements Source: rewinds the inner source and replays the
// identical jitter stream.
func (u *UpliftSource) Reset() error {
	if err := u.src.Reset(); err != nil {
		return err
	}
	u.rewind()
	return nil
}

// DiskSectors implements Source: the target profile's address space.
func (u *UpliftSource) DiskSectors() int64 { return u.opts.Profile.Sectors }

// Name implements Source.
func (u *UpliftSource) Name() string {
	return u.src.Name() + "+" + u.opts.Profile.Name
}

// Close closes the inner source when it holds a file.
func (u *UpliftSource) Close() error { return CloseSource(u.src) }
