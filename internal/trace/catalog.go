package trace

import (
	"math"
	"math/rand"
	"time"
)

// This file carries the calibrated catalog of the paper's named traces.
// Targets come straight from Tables I and II; periodicity and burst
// parameters are set to reproduce the Section V-A findings (Figs. 8-13).

const week = 7 * 24 * time.Hour

// Catalog returns the Table I disks, calibrated to Table II.
func Catalog() []Synth {
	gb := func(n int64) int64 { return n * 1000 * 1000 * 1000 / 512 }
	return []Synth{
		{
			Name: "MSRsrc11", Description: "Source Control",
			NominalDuration: week, NominalRequests: 45746222,
			MeanIdle: 464 * time.Millisecond, IdleCoV: 21.693,
			Dist: GapLognormal, PeriodHours: 24, DiurnalAmp: 0.55, GapPhi: 0.55,
			DiskSectors: gb(300), WriteFrac: 0.45, SeqProb: 0.55, ReqSectors: 16,
		},
		{
			Name: "MSRusr1", Description: "Home dirs",
			NominalDuration: week, NominalRequests: 45283980,
			MeanIdle: 99700 * time.Microsecond, IdleCoV: 8.6516,
			Dist: GapLognormal, PeriodHours: 24, DiurnalAmp: 0.5, GapPhi: 0.5,
			DiskSectors: gb(300), WriteFrac: 0.2, SeqProb: 0.6, ReqSectors: 32,
		},
		{
			Name: "MSRproj2", Description: "Project dirs",
			NominalDuration: week, NominalRequests: 29266482,
			MeanIdle: 138400 * time.Microsecond, IdleCoV: 200.75,
			Dist: GapLognormal, PeriodHours: 24, DiurnalAmp: 0.6, GapPhi: 0.45,
			DiskSectors: gb(600), WriteFrac: 0.12, SeqProb: 0.7, ReqSectors: 32,
		},
		{
			Name: "MSRprn1", Description: "Print server",
			NominalDuration: week, NominalRequests: 11233411,
			MeanIdle: 228 * time.Millisecond, IdleCoV: 12.641,
			Dist: GapLognormal, PeriodHours: 24, DiurnalAmp: 0.6, GapPhi: 0.5,
			DiskSectors: gb(300), WriteFrac: 0.7, SeqProb: 0.5, ReqSectors: 16,
		},
		{
			Name: "HPc6t8d0", Description: "News Disk",
			NominalDuration: week, NominalRequests: 9529855,
			MeanIdle: 150200 * time.Microsecond, IdleCoV: 13.845,
			Dist: GapLognormal, PeriodHours: 24, DiurnalAmp: 0.45, GapPhi: 0.5,
			DiskSectors: gb(9), WriteFrac: 0.4, SeqProb: 0.35, ReqSectors: 16,
		},
		{
			Name: "HPc6t5d1", Description: "Project files",
			NominalDuration: week, NominalRequests: 4588778,
			MeanIdle: 450300 * time.Microsecond, IdleCoV: 29.807,
			Dist: GapLognormal, PeriodHours: 24, DiurnalAmp: 0.55, GapPhi: 0.55,
			DiskSectors: gb(9), WriteFrac: 0.3, SeqProb: 0.5, ReqSectors: 16,
		},
		{
			Name: "HPc6t5d0", Description: "Home dirs",
			NominalDuration: week, NominalRequests: 3365078,
			MeanIdle: 434500 * time.Microsecond, IdleCoV: 9.0731,
			Dist: GapLognormal, PeriodHours: 24, DiurnalAmp: 0.5, GapPhi: 0.5,
			DiskSectors: gb(9), WriteFrac: 0.35, SeqProb: 0.45, ReqSectors: 16,
		},
		{
			Name: "HPc3t3d0", Description: "Root & Swap",
			NominalDuration: week, NominalRequests: 2742326,
			MeanIdle: 455500 * time.Microsecond, IdleCoV: 8.2301,
			Dist: GapLognormal, PeriodHours: 24, DiurnalAmp: 0.4, GapPhi: 0.45,
			DiskSectors: gb(4), WriteFrac: 0.6, SeqProb: 0.3, ReqSectors: 16,
		},
		{
			Name: "TPCdisk66", Description: "TPC-C run",
			NominalDuration: 720 * time.Second, NominalRequests: 513038,
			MeanIdle: 1400 * time.Microsecond, IdleCoV: 0.8608,
			Dist: GapGamma, PeriodHours: 0, DiurnalAmp: 0,
			DiskSectors: gb(70), WriteFrac: 0.5, SeqProb: 0.05, ReqSectors: 16,
		},
		{
			Name: "TPCdisk88", Description: "TPC-C run",
			NominalDuration: 720 * time.Second, NominalRequests: 513844,
			MeanIdle: 1500 * time.Microsecond, IdleCoV: 0.8785,
			Dist: GapGamma, PeriodHours: 0, DiurnalAmp: 0,
			DiskSectors: gb(70), WriteFrac: 0.5, SeqProb: 0.05, ReqSectors: 16,
		},
	}
}

// MSRusr2 returns the disk used by the paper's Figs. 14 and 15 policy
// studies ("representative of most disks in our trace collections"); it is
// not in Table I/II, so its parameters are representative mid-range values.
func MSRusr2() Synth {
	return Synth{
		Name: "MSRusr2", Description: "Home dirs (policy study)",
		NominalDuration: week, NominalRequests: 12000000,
		MeanIdle: 250 * time.Millisecond, IdleCoV: 15,
		Dist: GapLognormal, PeriodHours: 24, DiurnalAmp: 0.5, GapPhi: 0.5,
		DiskSectors: 585937500, WriteFrac: 0.25, SeqProb: 0.55, ReqSectors: 16,
	}
}

// ByName finds a catalog entry (including MSRusr2) by name.
func ByName(name string) (Synth, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	if u := MSRusr2(); u.Name == name {
		return u, true
	}
	return Synth{}, false
}

// Fig9Disk pairs a disk name with its assigned dominant period for the
// Fig. 9 reproduction. The paper's per-disk values are only published as a
// plot; this catalog synthesizes the aggregate story it tells — the five
// least-busy disks show no periodicity, most disks are diurnal (24 h), and
// a handful peak at other intervals.
type Fig9Disk struct {
	Name        string
	PeriodHours int // 1 = no periodicity
	// BaseRequestsPerHour sets the mean activity level.
	BaseRequestsPerHour float64
}

// Fig9Catalog returns the busiest-63-disks catalog in the paper's x-axis
// order (least busy first).
func Fig9Catalog() []Fig9Disk {
	names := []string{
		"MSRwdev3", "MSRwdev1", "MSRrsrch1", "HPc7t5d0", "HPc1t1d0",
		"MSRweb3", "HPc6t6d0", "HPc6t3d0", "HPc2t4d0", "HPc7t3d0",
		"HPc0t1d0", "HPc2t3d0", "HPc6t2d0", "MSRweb1", "HPc2t2d0",
		"MSRwdev2", "MSRrsrch2", "HPc0t5d0", "HPc1t2d0", "HPc3t5d0",
		"HPc0t2d0", "HPc6t2d1", "MSRhm1", "MSRsrc21", "MSRwdev0",
		"MSRsrc22", "HPc2t1d0", "MSRmds0", "MSRrsrch0", "MSprod0",
		"MSRsrc20", "MSRmds1", "HPc1t3d0", "MSRts0", "MSRsrc12",
		"HPc1t5d0", "MSRweb0", "MSRstg0", "MSRstg1", "MSRusr0",
		"MSRproj3", "HPc6t10d0", "HPc3t3d0", "HPc0t3d0", "HPc6t5d0",
		"HPc3t4d0", "HPc6t2d2", "MSRhm0", "MSRproj0", "HPc6t5d1",
		"MSRweb2", "MSRprn0", "MSRproj4", "HPc6t8d0", "MSRusr2",
		"MSRprn1", "MSRprxy0", "MSRproj1", "MSRproj2", "MSRsrc10",
		"MSRusr1", "MSRsrc11", "MSRprxy1",
	}
	out := make([]Fig9Disk, len(names))
	for i, n := range names {
		d := Fig9Disk{Name: n, PeriodHours: 24}
		switch {
		case i < 5:
			d.PeriodHours = 1 // no periodicity detected
		case n == "MSRweb3" || n == "HPc0t1d0":
			d.PeriodHours = 12
		case n == "MSRhm1":
			d.PeriodHours = 6
		case n == "MSRprxy1":
			d.PeriodHours = 12
		case n == "HPc2t4d0":
			d.PeriodHours = 36
		}
		// Activity grows along the (busiest-last) ordering.
		d.BaseRequestsPerHour = 2000 * math.Pow(1.09, float64(i))
		out[i] = d
	}
	return out
}

// HourlySeries generates a noisy hourly request-count series embedding the
// disk's assigned period, for driving the ANOVA detector (Fig. 9).
func (d Fig9Disk) HourlySeries(seed int64, hours int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, hours)
	for h := 0; h < hours; h++ {
		base := d.BaseRequestsPerHour
		if d.PeriodHours > 1 {
			phase := 2 * math.Pi * float64(h%d.PeriodHours) / float64(d.PeriodHours)
			base *= 1 + 0.7*math.Cos(phase)
		}
		// Multiplicative lognormal noise plus day-to-day variation.
		noise := math.Exp(0.25 * rng.NormFloat64())
		out[h] = base * noise
	}
	return out
}
