package trace

import (
	"errors"
	"io"
	"time"
)

// Source is a pull iterator over trace records, the streaming counterpart
// of a materialized *Trace. It is the contract every trace producer in
// this package satisfies — slices, the synthetic generator, the
// real-format parsers (MSR-Cambridge, HP Cello/SRT, blktrace), the
// columnar cache and the uplift transform — and every consumer accepts:
// tens-of-GB traces replay, tune and transcode without ever holding more
// than a bounded window of records in memory.
//
// Records come back in non-decreasing Arrival order. Next fills rec and
// returns nil, or returns io.EOF once the source is drained (rec is then
// unspecified). Any other error is terminal: the source stays at the
// failing position until Reset.
type Source interface {
	// Next fills rec with the next record; io.EOF ends the stream.
	Next(rec *Record) error
	// Reset rewinds the source to its first record. Sources over
	// non-seekable readers return ErrNotResettable.
	Reset() error
	// DiskSectors returns the address space the records target. Parser
	// sources that learn the extent as they scan return the largest end
	// seen so far (zero before the first record); the cache and slice
	// sources know it up front.
	DiskSectors() int64
	// Name labels the source for reports and errors.
	Name() string
}

// ErrNotResettable reports a Reset on a source whose underlying reader
// cannot seek (e.g. a pipe). Re-open the file or rebuild the source.
var ErrNotResettable = errors.New("trace: source not resettable")

// SliceSource adapts in-memory records to the Source interface, so every
// existing *Trace keeps working against source-based consumers. Next is
// allocation-free.
type SliceSource struct {
	name        string
	diskSectors int64
	recs        []Record
	pos         int
}

// NewSliceSource wraps records (shared, not copied) as a Source.
func NewSliceSource(name string, diskSectors int64, recs []Record) *SliceSource {
	return &SliceSource{name: name, diskSectors: diskSectors, recs: recs}
}

// Source returns a streaming view of the trace's records.
func (t *Trace) Source() *SliceSource {
	return NewSliceSource(t.Name, t.DiskSectors, t.Records)
}

// Next implements Source.
//
//scrub:hotpath
func (s *SliceSource) Next(rec *Record) error {
	if s.pos >= len(s.recs) {
		return io.EOF
	}
	*rec = s.recs[s.pos]
	s.pos++
	return nil
}

// Reset implements Source.
func (s *SliceSource) Reset() error {
	s.pos = 0
	return nil
}

// DiskSectors implements Source.
func (s *SliceSource) DiskSectors() int64 { return s.diskSectors }

// Name implements Source.
func (s *SliceSource) Name() string { return s.name }

// Len returns the number of records remaining plus consumed.
func (s *SliceSource) Len() int { return len(s.recs) }

// Records exposes the backing slice; consumers with a bulk fast path
// (replay.Replayer) use it to keep the slice-era behavior byte-for-byte.
func (s *SliceSource) Records() []Record { return s.recs }

// ReadAll drains a source into a materialized *Trace. It resets the
// source first when possible, so a partially consumed resettable source
// still yields the full trace.
func ReadAll(src Source) (*Trace, error) {
	if err := src.Reset(); err != nil && err != ErrNotResettable {
		return nil, err
	}
	t := &Trace{Name: src.Name()}
	var rec Record
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
	t.DiskSectors = src.DiskSectors()
	if t.DiskSectors == 0 {
		for _, r := range t.Records {
			if end := r.LBA + r.Sectors; end > t.DiskSectors {
				t.DiskSectors = end
			}
		}
	}
	return t, nil
}

// EachArrival streams the arrival-time series of a source — the
// streaming counterpart of Trace.Arrivals — calling fn for each arrival
// until it returns false or the source drains. The source is not Reset
// first; callers position it.
func EachArrival(src Source, fn func(time.Duration) bool) error {
	var rec Record
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(rec.Arrival) {
			return nil
		}
	}
}

// Count drains a source, returning the record count and the last arrival
// (the span when the source starts at zero).
func Count(src Source) (n int64, last time.Duration, err error) {
	var rec Record
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			return n, last, nil
		}
		if err != nil {
			return n, last, err
		}
		n++
		last = rec.Arrival
	}
}

// sourceCloser pairs a Source with the file it reads from.
type sourceCloser interface {
	Source
	io.Closer
}

// limitSource caps a source at max records (0 = unlimited).
type limitSource struct {
	Source
	max, seen int64
}

// Limit returns a view of src that drains after max records (max <= 0
// returns src unchanged). Reset rewinds the cap along with the source.
func Limit(src Source, max int64) Source {
	if max <= 0 {
		return src
	}
	return &limitSource{Source: src, max: max}
}

// Next implements Source.
//
//scrub:hotpath
func (l *limitSource) Next(rec *Record) error {
	if l.seen >= l.max {
		return io.EOF
	}
	if err := l.Source.Next(rec); err != nil {
		return err
	}
	l.seen++
	return nil
}

// Reset implements Source.
func (l *limitSource) Reset() error {
	if err := l.Source.Reset(); err != nil {
		return err
	}
	l.seen = 0
	return nil
}
