package trace

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseRecord drives the CSV record parser with arbitrary lines and
// checks that every accepted record satisfies the invariants the rest of
// the system relies on: non-negative arrival, a valid [LBA, LBA+Sectors)
// extent that does not overflow int64.
func FuzzParseRecord(f *testing.F) {
	seeds := []string{
		"0,R,2048,8",
		"1000000,W,0,1",
		"128166372003,r,1024,4096",
		"-1,R,0,8",
		"9223372036854775807,R,0,8",
		"9223372036854,R,0,8",
		"1,X,0,8",
		"1,R,0,0",
		"1,R,-5,8",
		"1,R,9223372036854775807,9223372036854775807",
		"1,R,8",
		"a,b,c,d",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := parseRecord(line)
		if err != nil {
			return // malformed input must error, never panic
		}
		if rec.Arrival < 0 {
			t.Fatalf("accepted negative arrival %v from %q", rec.Arrival, line)
		}
		if rec.LBA < 0 || rec.Sectors <= 0 {
			t.Fatalf("accepted invalid extent [%d,+%d) from %q", rec.LBA, rec.Sectors, line)
		}
		if rec.LBA+rec.Sectors < rec.LBA {
			t.Fatalf("extent end overflows for %q", line)
		}
	})
}

// FuzzParseMSR drives the whole MSR-format reader with arbitrary input
// and checks the output invariants: monotone non-negative arrivals and
// extents contained in the reported disk size.
func FuzzParseMSR(f *testing.F) {
	seeds := []string{
		msrSample,
		"128166372003061629,src1,1,Read,1024,4096,411\n",
		"128166372003061629,src1,1,Write,0,512,1\n",
		"0,h,0,Read,0,1,0\n",
		"-1,h,0,Read,0,1,0\n",
		"9223372036854775807,h,0,Read,0,1,0\n0,h,0,Read,0,1,0\n",
		"0,h,0,Read,0,9223372036854775807,0\n",
		"0,h,0,Read,9223372036854775806,9223372036854775806,0\n",
		"1,h,x,Read,0,1,0\n",
		"1,h,0,Trim,0,1,0\n",
		"# comment\n\n" + msrSample,
		"not,a,trace\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadMSR(strings.NewReader(data), MSROptions{Name: "fuzz", DiskNumber: -1})
		if err != nil {
			return // malformed input must error, never panic
		}
		var prev time.Duration
		for i, r := range tr.Records {
			if r.Arrival < prev {
				t.Fatalf("record %d: arrival %v went backwards (prev %v)", i, r.Arrival, prev)
			}
			prev = r.Arrival
			if r.LBA < 0 || r.Sectors <= 0 {
				t.Fatalf("record %d: invalid extent [%d,+%d)", i, r.LBA, r.Sectors)
			}
			if end := r.LBA + r.Sectors; end < r.LBA || end > tr.DiskSectors {
				t.Fatalf("record %d: extent end %d outside disk of %d sectors", i, end, tr.DiskSectors)
			}
		}
	})
}

// FuzzRead exercises the package's own CSV decoder and checks that every
// accepted trace round-trips through Write and Read unchanged.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"# trace: x disk_sectors: 4096\narrival_us,op,lba,sectors\n0,R,0,8\n10,W,8,8\n",
		"arrival_us,op,lba,sectors\n0,R,0,8\n",
		"arrival_us,op,lba,sectors\n5,R,0,8\n4,R,0,8\n",
		"arrival_us,op,lba,sectors\n",
		"0,R,0,8\n",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := Write(&b, tr); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		tr2, err := Read(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(tr2.Records) != len(tr.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(tr.Records), len(tr2.Records))
		}
		for i := range tr.Records {
			if tr.Records[i] != tr2.Records[i] {
				t.Fatalf("record %d changed: %+v -> %+v", i, tr.Records[i], tr2.Records[i])
			}
		}
	})
}
