package repro

// Runtime smoke test for the example programs: each must run to
// completion and produce output. `go build ./...` already guarantees they
// compile; this guards their runtime paths (they exercise the public API
// end to end). Skipped in -short mode: together they simulate tens of
// minutes of disk time.

import (
	"os/exec"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a minute; skipped in -short mode")
	}
	examples := []string{
		"quickstart",
		"fileserver",
		"datacenter",
		"tradeoff",
		"powersave",
		"rebuild",
		"multitenant",
	}
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
}
