// Package repro reproduces "Practical Scrubbing: Getting to the bad
// sector at the right time" (Amvrosiadis, Oprea, Schroeder; DSN 2012) as
// a Go library: a deterministic simulation of the paper's storage stack
// (mechanical drives, Linux-like block layer and CFQ scheduler, kernel
// and user level scrubbers), its statistical trace analysis, its scrub
// scheduling policies, and the request-size/wait-threshold optimizer.
//
// The top-level package only anchors the module and the per-figure
// benchmarks in bench_test.go; the library lives under internal/ (see
// README.md for the architecture and DESIGN.md for the experiment
// index).
package repro
