package repro

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment (in Quick mode so the full suite
// finishes in minutes) and reports the experiment's headline quantity as
// a custom metric alongside the usual ns/op, so `go test -bench=.`
// doubles as the reproduction harness. cmd/paperfigs prints the full
// (non-quick) tables and series.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/arima"
	"repro/internal/experiments"
)

func benchOpts(i int) experiments.Options {
	return experiments.Options{Quick: true, Seed: int64(i + 1)}
}

// BenchmarkFig1VerifyResponse regenerates Fig. 1: ATA vs SAS sequential
// VERIFY response times with the on-disk cache on/off. Metrics: the three
// response-time bands (ms).
func BenchmarkFig1VerifyResponse(b *testing.B) {
	var ataOff, ataOn, sas float64
	for i := 0; i < b.N; i++ {
		ss := experiments.Fig1(benchOpts(i))
		for _, s := range ss {
			switch s.Label {
			case "WD Caviar 320GB cache=false":
				ataOff = s.Y[0]
			case "WD Caviar 320GB cache=true":
				ataOn = s.Y[0]
			case "Hitachi Ultrastar 15K450 300GB cache=false":
				sas = s.Y[0]
			}
		}
	}
	b.ReportMetric(ataOff, "ATAcacheOff_ms")
	b.ReportMetric(ataOn, "ATAcacheOn_ms")
	b.ReportMetric(sas, "SAS_ms")
}

// BenchmarkFig3UserVsKernel regenerates Fig. 3. Metrics: scrub throughput
// of the kernel and user scrubbers at Default priority (MB/s).
func BenchmarkFig3UserVsKernel(b *testing.B) {
	var kernel, user float64
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig3(benchOpts(i))
		for _, r := range tb.Rows {
			switch r[0] {
			case "Default (K)":
				kernel = atof(r[2])
			case "Default (U)":
				user = atof(r[2])
			}
		}
	}
	b.ReportMetric(kernel, "kernelScrub_MBps")
	b.ReportMetric(user, "userScrub_MBps")
}

// BenchmarkFig4VerifyService regenerates Fig. 4. Metric: the SCSI drive's
// small-request VERIFY service time (paper: ~8.8 ms).
func BenchmarkFig4VerifyService(b *testing.B) {
	var scsi float64
	for i := 0; i < b.N; i++ {
		ss := experiments.Fig4(benchOpts(i))
		for _, s := range ss {
			if s.Label == "Fujitsu MAP3367NP 36GB" {
				scsi = s.Y[0]
			}
		}
	}
	b.ReportMetric(scsi, "SCSIverify1KB_ms")
}

// BenchmarkFig5Throughput regenerates Figs. 5a/5b. Metrics: sequential vs
// staggered(512) 64 KB scrub throughput on the Ultrastar.
func BenchmarkFig5Throughput(b *testing.B) {
	var seq, stag512 float64
	for i := 0; i < b.N; i++ {
		ss := experiments.Fig5b(benchOpts(i))
		for _, s := range ss {
			if s.Label == "Hitachi Ultrastar 15K450 300GB sequential (baseline)" {
				seq = s.Y[0]
			}
			if s.Label == "Hitachi Ultrastar 15K450 300GB staggered" {
				stag512 = s.Y[len(s.Y)-1]
			}
		}
	}
	b.ReportMetric(seq, "seq64KB_MBps")
	b.ReportMetric(stag512, "stag512_MBps")
}

// BenchmarkFig6SyntheticImpact regenerates Fig. 6a. Metrics: foreground
// throughput alone and under CFQ-idle scrubbing (MB/s).
func BenchmarkFig6SyntheticImpact(b *testing.B) {
	var alone, underCFQ, scrubCFQ float64
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig6(benchOpts(i), false)
		for _, r := range tb.Rows {
			switch r[0] {
			case "None":
				alone = atof(r[1])
			case "CFQ":
				underCFQ = atof(r[1])
				scrubCFQ = atof(r[2])
			}
		}
	}
	b.ReportMetric(alone, "fgAlone_MBps")
	b.ReportMetric(underCFQ, "fgUnderCFQ_MBps")
	b.ReportMetric(scrubCFQ, "scrubCFQ_MBps")
}

// BenchmarkFig7TraceReplay regenerates Fig. 7. Metrics: median response
// time without scrubbing and under back-to-back scrubbing (ms).
func BenchmarkFig7TraceReplay(b *testing.B) {
	var medNone, medScrub float64
	for i := 0; i < b.N; i++ {
		rs := experiments.Fig7(benchOpts(i))
		med := func(r experiments.Fig7Result) float64 {
			for j, p := range r.CDF.Y {
				if p >= 0.5 {
					return r.CDF.X[j] * 1e3
				}
			}
			return 0
		}
		for _, r := range rs {
			switch r.Label {
			case "No scrubber":
				medNone = med(r)
			case "0ms (Seql)":
				medScrub = med(r)
			}
		}
	}
	b.ReportMetric(medNone, "medianNoScrub_ms")
	b.ReportMetric(medScrub, "medianScrub0ms_ms")
}

// BenchmarkFig8Activity regenerates Fig. 8. Metric: peak-to-trough ratio
// of hourly request counts (diurnal swing).
func BenchmarkFig8Activity(b *testing.B) {
	var swing float64
	for i := 0; i < b.N; i++ {
		ss := experiments.Fig8(benchOpts(i))
		lo, hi := ss[0].Y[0], ss[0].Y[0]
		for _, v := range ss[0].Y {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo > 0 {
			swing = hi / lo
		}
	}
	b.ReportMetric(swing, "hourlySwing_x")
}

// BenchmarkFig9ANOVA regenerates Fig. 9. Metrics: disks detected at 24 h
// and detection accuracy against the embedded periods.
func BenchmarkFig9ANOVA(b *testing.B) {
	var daily, correct float64
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig9(benchOpts(i))
		daily, correct = 0, 0
		for _, r := range tb.Rows {
			if r[2] == "24" {
				daily++
			}
			if r[1] == r[2] {
				correct++
			}
		}
	}
	b.ReportMetric(daily, "disksAt24h")
	b.ReportMetric(correct, "correctOf63")
}

// BenchmarkFig10To13IdleCurves regenerates the idle-time analysis.
// Metrics: Fig. 10's tail share at 15% and Fig. 13's usable fraction
// after a 100 ms wait, for MSRsrc11.
func BenchmarkFig10To13IdleCurves(b *testing.B) {
	var tail, usable float64
	for i := 0; i < b.N; i++ {
		o := benchOpts(i)
		for _, s := range experiments.Fig10(o) {
			if s.Label == "MSRsrc11" {
				// Last point is ~0.5 fraction; find nearest to 0.15.
				for j, x := range s.X {
					if x >= 0.15 {
						tail = s.Y[j]
						break
					}
				}
			}
		}
		for _, s := range experiments.Fig13(o) {
			if s.Label == "MSRsrc11" {
				for j, x := range s.X {
					if x >= 0.1 {
						usable = s.Y[j]
						break
					}
				}
			}
		}
		_ = experiments.Fig11(o)
		_ = experiments.Fig12(o)
	}
	b.ReportMetric(tail, "top15pctShare")
	b.ReportMetric(usable, "usableAfter100ms")
}

// BenchmarkFig14PolicyFrontier regenerates Fig. 14 on MSRusr2. Metrics:
// best idle-time utilization of Waiting and AR at comparable collision
// rates.
func BenchmarkFig14PolicyFrontier(b *testing.B) {
	var waitUtil, arUtil float64
	for i := 0; i < b.N; i++ {
		ss := experiments.Fig14(benchOpts(i), "MSRusr2")
		for _, s := range ss {
			best := 0.0
			for _, y := range s.Y {
				if y > best {
					best = y
				}
			}
			switch s.Label {
			case "Waiting":
				waitUtil = best
			case "Auto-Regression":
				arUtil = best
			}
		}
	}
	b.ReportMetric(waitUtil, "waitingBestUtil")
	b.ReportMetric(arUtil, "arBestUtil")
}

// BenchmarkFig15SizeStudy regenerates Fig. 15. Metrics: tuned and 64 KB
// throughput at the 1 ms slowdown point.
func BenchmarkFig15SizeStudy(b *testing.B) {
	var opt, small float64
	for i := 0; i < b.N; i++ {
		ss := experiments.Fig15(benchOpts(i))
		for _, s := range ss {
			switch s.Label {
			case "Optimal fixed":
				opt = nearest(s, 1.0)
			case "64KB fixed":
				small = nearest(s, 1.0)
			}
		}
	}
	b.ReportMetric(opt, "optimal@1ms_MBps")
	b.ReportMetric(small, "64KB@1ms_MBps")
}

// BenchmarkTable2IdleStats regenerates Table II. Metric: measured CoV for
// MSRsrc11 (paper: 21.7).
func BenchmarkTable2IdleStats(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		tb := experiments.Table2(benchOpts(i))
		for _, r := range tb.Rows {
			if r[0] == "MSRsrc11" {
				cov = atof(r[3])
			}
		}
	}
	b.ReportMetric(cov, "src11CoV")
}

// BenchmarkTable3Tuning regenerates Table III's headline comparison for
// HPc6t8d0. Metrics: tuned Waiting throughput at the 1 ms goal vs the CFQ
// baseline (MB/s).
func BenchmarkTable3Tuning(b *testing.B) {
	var waiting, cfq float64
	for i := 0; i < b.N; i++ {
		tb := experiments.Table3(benchOpts(i))
		for _, r := range tb.Rows {
			if r[0] != "HPc6t8d0" {
				continue
			}
			switch r[1] {
			case "Waiting 1ms":
				if r[3] != "-" {
					waiting = atof(r[3])
				}
			case "CFQ":
				cfq = atof(r[3])
			}
		}
	}
	b.ReportMetric(waiting, "waiting1ms_MBps")
	b.ReportMetric(cfq, "cfq_MBps")
}

// BenchmarkTable1Catalog regenerates Table I (trivially cheap; kept so
// every table has a bench target).
func BenchmarkTable1Catalog(b *testing.B) {
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Table1(benchOpts(i)).Rows)
	}
	b.ReportMetric(float64(rows), "traces")
}

// atof parses benchmark table cells; they are produced by this module, so
// a parse failure is a bug.
func atof(s string) float64 {
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		panic(err)
	}
	return v
}

func nearest(s experiments.Series, x float64) float64 {
	bestD := -1.0
	bestY := 0.0
	for i := range s.X {
		d := s.X[i] - x
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			bestD, bestY = d, s.Y[i]
		}
	}
	return bestY
}

// BenchmarkAblations regenerates the four ablation studies (rotational
// miss, CFQ idle gate, AR order, MLET extension). Metrics: the MLET ratio
// of sequential scanning to staggered+region-scrub, and sequential 64 KB
// scrub throughput with the propagation overheads removed.
func BenchmarkAblations(b *testing.B) {
	var mletRatio, seqNoMiss float64
	for i := 0; i < b.N; i++ {
		o := benchOpts(i)
		rot := experiments.AblationRotationalMiss(o)
		seqNoMiss = atof(rot.Rows[1][1])
		_ = experiments.AblationIdleGate(o)
		_ = experiments.AblationAROrder(o)
		ml := experiments.AblationMLET(o)
		seq := parseDurSec(ml.Rows[0][1])
		region := parseDurSec(ml.Rows[2][1])
		if region > 0 {
			mletRatio = seq / region
		}
	}
	b.ReportMetric(mletRatio, "MLETseqOverRegion_x")
	b.ReportMetric(seqNoMiss, "seqNoMiss_MBps")
}

func parseDurSec(s string) float64 {
	d, err := time.ParseDuration(s)
	if err != nil {
		panic(err)
	}
	return d.Seconds()
}

// BenchmarkModelFitSpeed reproduces the paper's Section V-B1 modelling
// claim: AR(p) by Levinson-Durbin is the only candidate cheap enough to
// fit at I/O rates. Metrics: fit cost of AR, ARMA (Hannan-Rissanen) and
// ACD(1,1) (MLE) on the same 100k-duration series, in ms.
func BenchmarkModelFitSpeed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = 0.5*xs[i-1] + math.Abs(rng.NormFloat64())
	}
	var arMS, armaMS, acdMS float64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := arima.FitAIC(xs, 8); err != nil {
			b.Fatal(err)
		}
		arMS = float64(time.Since(t0)) / 1e6
		t0 = time.Now()
		if _, err := arima.FitARMA(xs, 2, 2); err != nil {
			b.Fatal(err)
		}
		armaMS = float64(time.Since(t0)) / 1e6
		t0 = time.Now()
		if _, err := arima.FitACD(xs); err != nil {
			b.Fatal(err)
		}
		acdMS = float64(time.Since(t0)) / 1e6
	}
	b.ReportMetric(arMS, "AR_ms")
	b.ReportMetric(armaMS, "ARMA_ms")
	b.ReportMetric(acdMS, "ACD_ms")
}
