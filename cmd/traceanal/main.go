// Command traceanal runs the paper's Section V-A statistical analysis on a
// block I/O trace: idle-interval summary (Table II), ANOVA periodicity
// (Fig. 9), autocorrelation, tail concentration (Fig. 10) and the
// hazard-rate curves (Figs. 11-13).
//
// Usage:
//
//	traceanal -trace MSRsrc11 -dur 12h
//	traceanal -file mytrace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceanal:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceanal", flag.ContinueOnError)
	name := fs.String("trace", "MSRsrc11", "catalog trace name")
	file := fs.String("file", "", "trace file (overrides -trace); format sniffed unless -format is set")
	format := fs.String("format", "auto", "trace file format: auto | native | msr | cello | blktrace | cache")
	msr := fs.Bool("msr", false, "treat -file as SNIA MSR-Cambridge format (alias for -format msr)")
	msrDisk := fs.Int("msr-disk", -1, "MSR DiskNumber filter (-1 = all)")
	dur := fs.Duration("dur", 12*time.Hour, "duration to generate (catalog traces)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *trace.Trace
	if *file != "" {
		src, err := openTraceFile(*file, *format, *msr, *msrDisk)
		if err != nil {
			return err
		}
		defer trace.CloseSource(src)
		if tr, err = trace.ReadAll(src); err != nil {
			return err
		}
		if tr.Name == "" {
			tr.Name = *file
		}
	} else {
		spec, ok := trace.ByName(*name)
		if !ok {
			return fmt.Errorf("unknown trace %q", *name)
		}
		tr = spec.Generate(*seed, *dur)
	}

	fmt.Printf("trace: %s\n\n", tr.Name)

	// The one-stop Section V-A characterization.
	profile := stats.ProfileArrivals(tr.Arrivals())
	fmt.Println(profile)
	if profile.WaitingFriendly() {
		fmt.Println("\nverdict: waiting-friendly — a tuned Waiting scrubber will hide well here")
	} else {
		fmt.Println("\nverdict: not waiting-friendly (memoryless or thin idle tail)")
	}

	// Fig. 13 detail: the wait-threshold trade-off table.
	gaps := stats.IdleGaps(tr.Arrivals())
	a := stats.NewIdleAnalysis(gaps)
	fmt.Printf("\nusable idle time after waiting (Fig. 13):\n")
	for _, w := range []float64{0.01, 0.05, 0.1, 0.5, 1} {
		fmt.Printf("  wait %6.0f ms -> %5.1f%% usable, %5.2f%% of intervals picked\n",
			w*1e3, 100*a.UsableAfterWait(w), 100*a.FractionLonger(w))
	}
	return nil
}

// openTraceFile opens a trace file as a Source, honoring the -format
// flag (with "auto" sniffing) and the legacy -msr/-msr-disk flags.
func openTraceFile(path, format string, msr bool, msrDisk int) (trace.Source, error) {
	f, err := trace.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	if msr {
		f = trace.FormatMSR
	}
	if f == trace.FormatUnknown {
		if f, err = trace.DetectFormat(path); err != nil {
			return nil, err
		}
	}
	if f == trace.FormatMSR {
		return trace.OpenMSR(path, trace.MSROptions{Name: path, DiskNumber: msrDisk})
	}
	return trace.Open(path, f)
}
