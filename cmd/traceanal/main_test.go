package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAnalyzeCatalogTrace(t *testing.T) {
	if err := run([]string{"-trace", "TPCdisk66", "-dur", "30s"}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeUnknownTrace(t *testing.T) {
	if err := run([]string{"-trace", "ghost"}); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestAnalyzeBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestAnalyzeCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	content := "arrival_us,op,lba,sectors\n"
	for i := 0; i < 500; i++ {
		content += itoa(int64(i)*100000) + ",R," + itoa(int64(i)*100) + ",8\n"
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", "/no/such/file"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
