// Command paperfigs regenerates every table and figure of the paper's
// evaluation and prints them as text tables / point series.
//
// Usage:
//
//	paperfigs [-quick] [-seed N] [-only fig5b,table3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paperfigs", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink durations and sweeps for a fast pass")
	seed := fs.Int64("seed", 1, "random seed")
	only := fs.String("only", "", "comma-separated subset (fig1,fig3,...,table3)")
	export := fs.String("export", "", "write gnuplot-ready .dat/.gp/.txt artifacts into this directory instead of printing")
	scorecard := fs.Bool("scorecard", false, "re-check the paper's claims and print a PASS/FAIL report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := experiments.Options{Quick: *quick, Seed: *seed}
	if *scorecard {
		fmt.Print(experiments.Scorecard(o).Render())
		return nil
	}
	if *export != "" {
		names, err := experiments.ExportAll(*export, o)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d artifacts to %s\n", len(names), *export)
		return nil
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(k))] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	if sel("fig1") {
		fmt.Print(experiments.RenderSeries("Fig. 1: ATA vs SAS VERIFY response times (ms) vs request size (bytes)", experiments.Fig1(o)))
	}
	if sel("fig3") {
		fmt.Print(experiments.Fig3(o).Render())
	}
	if sel("fig4") {
		fmt.Print(experiments.RenderSeries("Fig. 4: SCSI VERIFY service times (ms) vs request size (bytes)", experiments.Fig4(o)))
	}
	if sel("fig5a") {
		fmt.Print(experiments.RenderSeries("Fig. 5a: scrub throughput (MB/s) vs request size (bytes)", experiments.Fig5a(o)))
	}
	if sel("fig5b") {
		fmt.Print(experiments.RenderSeries("Fig. 5b: scrub throughput (MB/s) vs number of regions (64KB requests)", experiments.Fig5b(o)))
	}
	if sel("fig6a") || sel("fig6") {
		fmt.Print(experiments.Fig6(o, false).Render())
	}
	if sel("fig6b") || sel("fig6") {
		fmt.Print(experiments.Fig6(o, true).Render())
	}
	if sel("fig7") {
		fmt.Println("== Fig. 7: response-time CDFs replaying MSRsrc11 ==")
		for _, r := range experiments.Fig7(o) {
			fmt.Printf("-- %s (scrub rate %.0f req/s)\n", r.Label, r.ScrubReqRate)
			for i := range r.CDF.X {
				fmt.Printf("   %12.6f s  %6.3f\n", r.CDF.X[i], r.CDF.Y[i])
			}
		}
	}
	if sel("fig8") {
		fmt.Print(experiments.RenderSeries("Fig. 8: requests per hour", experiments.Fig8(o)))
	}
	if sel("fig9") {
		fmt.Print(experiments.Fig9(o).Render())
	}
	if sel("fig10") {
		fmt.Print(experiments.RenderSeries("Fig. 10: idle-time share of the largest intervals", experiments.Fig10(o)))
	}
	if sel("fig11") {
		fmt.Print(experiments.RenderSeries("Fig. 11: expected remaining idle time (s) vs time idle (s)", experiments.Fig11(o)))
	}
	if sel("fig12") {
		fmt.Print(experiments.RenderSeries("Fig. 12: 1st percentile of remaining idle time (s)", experiments.Fig12(o)))
	}
	if sel("fig13") {
		fmt.Print(experiments.RenderSeries("Fig. 13: fraction of idle time usable after waiting (s)", experiments.Fig13(o)))
	}
	if sel("fig14") {
		for _, d := range []string{"HPc6t8d0", "MSRusr2"} {
			fmt.Print(experiments.RenderSeries("Fig. 14: idle-time utilized vs collision rate — "+d, experiments.Fig14(o, d)))
		}
	}
	if sel("fig15") {
		fmt.Print(experiments.RenderSeries("Fig. 15: scrub throughput (MB/s) vs mean slowdown (ms)", experiments.Fig15(o)))
	}
	if sel("table1") {
		fmt.Print(experiments.Table1(o).Render())
	}
	if sel("table2") {
		fmt.Print(experiments.Table2(o).Render())
	}
	if sel("table3") {
		fmt.Print(experiments.Table3(o).Render())
	}
	if sel("ablations") {
		fmt.Print(experiments.AblationRotationalMiss(o).Render())
		fmt.Print(experiments.AblationIdleGate(o).Render())
		fmt.Print(experiments.AblationAROrder(o).Render())
		fmt.Print(experiments.AblationSwapping(o).Render())
		fmt.Print(experiments.AblationMLET(o).Render())
	}
	return nil
}
