// Command paperfigs regenerates every table and figure of the paper's
// evaluation and prints them as text tables / point series.
//
// Usage:
//
//	paperfigs [-quick] [-seed N] [-parallel N] [-only fig5b,table3]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("paperfigs", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink durations and sweeps for a fast pass")
	seed := fs.Int64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
	only := fs.String("only", "", "comma-separated subset (fig1,fig3,...,table3)")
	export := fs.String("export", "", "write gnuplot-ready .dat/.gp/.txt artifacts into this directory instead of printing")
	scorecard := fs.Bool("scorecard", false, "re-check the paper's claims and print a PASS/FAIL report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := experiments.Options{Quick: *quick, Seed: *seed, Workers: *parallel}
	if *scorecard {
		fmt.Fprint(w, experiments.Scorecard(o).Render())
		return nil
	}
	if *export != "" {
		names, err := experiments.ExportAll(*export, o)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d artifacts to %s\n", len(names), *export)
		return nil
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(k))] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	// Each selected figure/table becomes one render task; RenderAll fans
	// them over the worker pool (each task fans its own simulations too)
	// and returns the rendered strings in task order, so the printed
	// output is independent of the worker count.
	var tasks []experiments.RenderTask
	add := func(name string, render func(experiments.Options) string) {
		tasks = append(tasks, experiments.RenderTask{Name: name, Render: render})
	}
	series := func(title string, gen func(experiments.Options) []experiments.Series) func(experiments.Options) string {
		return func(o experiments.Options) string {
			return experiments.RenderSeries(title, gen(o))
		}
	}
	if sel("fig1") {
		add("fig1", series("Fig. 1: ATA vs SAS VERIFY response times (ms) vs request size (bytes)", experiments.Fig1))
	}
	if sel("fig3") {
		add("fig3", func(o experiments.Options) string { return experiments.Fig3(o).Render() })
	}
	if sel("fig4") {
		add("fig4", series("Fig. 4: SCSI VERIFY service times (ms) vs request size (bytes)", experiments.Fig4))
	}
	if sel("fig5a") {
		add("fig5a", series("Fig. 5a: scrub throughput (MB/s) vs request size (bytes)", experiments.Fig5a))
	}
	if sel("fig5b") {
		add("fig5b", series("Fig. 5b: scrub throughput (MB/s) vs number of regions (64KB requests)", experiments.Fig5b))
	}
	if sel("fig6a") || sel("fig6") {
		add("fig6a", func(o experiments.Options) string { return experiments.Fig6(o, false).Render() })
	}
	if sel("fig6b") || sel("fig6") {
		add("fig6b", func(o experiments.Options) string { return experiments.Fig6(o, true).Render() })
	}
	if sel("fig7") {
		add("fig7", func(o experiments.Options) string {
			var b strings.Builder
			b.WriteString("== Fig. 7: response-time CDFs replaying MSRsrc11 ==\n")
			for _, r := range experiments.Fig7(o) {
				fmt.Fprintf(&b, "-- %s (scrub rate %.0f req/s)\n", r.Label, r.ScrubReqRate)
				for i := range r.CDF.X {
					fmt.Fprintf(&b, "   %12.6f s  %6.3f\n", r.CDF.X[i], r.CDF.Y[i])
				}
			}
			return b.String()
		})
	}
	if sel("fig8") {
		add("fig8", series("Fig. 8: requests per hour", experiments.Fig8))
	}
	if sel("fig9") {
		add("fig9", func(o experiments.Options) string { return experiments.Fig9(o).Render() })
	}
	if sel("fig10") {
		add("fig10", series("Fig. 10: idle-time share of the largest intervals", experiments.Fig10))
	}
	if sel("fig11") {
		add("fig11", series("Fig. 11: expected remaining idle time (s) vs time idle (s)", experiments.Fig11))
	}
	if sel("fig12") {
		add("fig12", series("Fig. 12: 1st percentile of remaining idle time (s)", experiments.Fig12))
	}
	if sel("fig13") {
		add("fig13", series("Fig. 13: fraction of idle time usable after waiting (s)", experiments.Fig13))
	}
	if sel("fig14") {
		for _, d := range []string{"HPc6t8d0", "MSRusr2"} {
			d := d
			add("fig14:"+d, func(o experiments.Options) string {
				return experiments.RenderSeries("Fig. 14: idle-time utilized vs collision rate — "+d, experiments.Fig14(o, d))
			})
		}
	}
	if sel("fig15") {
		add("fig15", series("Fig. 15: scrub throughput (MB/s) vs mean slowdown (ms)", experiments.Fig15))
	}
	if sel("table1") {
		add("table1", func(o experiments.Options) string { return experiments.Table1(o).Render() })
	}
	if sel("table2") {
		add("table2", func(o experiments.Options) string { return experiments.Table2(o).Render() })
	}
	if sel("table3") {
		add("table3", func(o experiments.Options) string { return experiments.Table3(o).Render() })
	}
	if sel("fig-ssd-policies") || sel("scenarios") {
		add("fig-ssd-policies", series("SSD scrub policies: throughput (MB/s) vs wait threshold (ms)", experiments.FigSSDPolicies))
	}
	if sel("table-rebuild-interference") || sel("scenarios") {
		add("table-rebuild-interference", func(o experiments.Options) string { return experiments.TableRebuildInterference(o).Render() })
	}
	if sel("table-schedulers") || sel("scenarios") {
		add("table-schedulers", func(o experiments.Options) string { return experiments.TableSchedulers(o).Render() })
	}
	if sel("scenario-matrix") || sel("scenarios") {
		add("scenario-matrix", func(o experiments.Options) string { return experiments.ScenarioMatrix(o).Render() })
	}
	if sel("ablations") {
		add("ablation:rotational-miss", func(o experiments.Options) string { return experiments.AblationRotationalMiss(o).Render() })
		add("ablation:idle-gate", func(o experiments.Options) string { return experiments.AblationIdleGate(o).Render() })
		add("ablation:ar-order", func(o experiments.Options) string { return experiments.AblationAROrder(o).Render() })
		add("ablation:swapping", func(o experiments.Options) string { return experiments.AblationSwapping(o).Render() })
		add("ablation:mlet", func(o experiments.Options) string { return experiments.AblationMLET(o).Render() })
	}

	for _, out := range experiments.RenderAll(o, tasks) {
		fmt.Fprint(w, out)
	}
	return nil
}
