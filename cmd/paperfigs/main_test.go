package main

import (
	"io"
	"os"
	"testing"
)

func TestPaperfigsSubset(t *testing.T) {
	if err := run([]string{"-quick", "-only", "table1,fig5b"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestPaperfigsBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestPaperfigsExportSubdir(t *testing.T) {
	if testing.Short() {
		t.Skip("export regenerates many experiments")
	}
	dir := t.TempDir()
	if err := run([]string{"-quick", "-export", dir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 19 {
		t.Fatalf("export wrote only %d files", len(entries))
	}
}
