package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// TestPaperfigsGoldenSubset pins the byte-exact CLI output of a cheap
// figure/table subset, run with 8 workers: any drift in experiment
// results or rendering — or any nondeterminism from the worker pool —
// fails this test.
func TestPaperfigsGoldenSubset(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-seed", "7", "-parallel", "8", "-only", "table1,fig5b"}, &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	path := filepath.Join("testdata", "subset.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run TestPaperfigsGoldenSubset -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (if the change is intended, rerun with -update):\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}
