// scrubbench scenario: the scenario-diversity benchmark suite. It times
// the hot paths the SSD/declustered/scheduler scenario families added:
//
//	scenario/ssd-service         raw flash Service loop (requests/sec)
//	scenario/ssd-scrub           full System scrubbing the SSD under load
//	scenario/declustered-rebuild declustered-parity rebuild to completion
//	scenario/declustered-scrub   rebuild with a concurrent group scrub
//	scenario/sched-bsa           trace replay through the BSA scheduler
//	                             on a drive with latent bad sectors
//
// The rebuild stages double as determinism gates: every iteration's
// group stats must be identical, or the run fails regardless of timing.
//
// Usage:
//
//	scrubbench scenario [-quick] [-o out.json] [-baseline base.json] [-threshold 0.25]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/benchcmp"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/iosched"
	"repro/internal/raidsim"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

func scenarioMain(argv []string) {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	quick := fs.Bool("quick", false, "CI-sized suite: shorter sims, fewer iterations")
	out := fs.String("o", "", "output path (default BENCH_SCENARIO_<date>.json)")
	baseline := fs.String("baseline", "", "baseline BENCH_SCENARIO_*.json to compare against")
	threshold := fs.Float64("threshold", 0.25, "tolerated relative regression vs the baseline")
	fs.Parse(argv)

	run, err := runScenarioBench(*quick, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrubbench scenario:", err)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = "BENCH_SCENARIO_" + run.Date + ".json"
	}
	if err := run.Write(path); err != nil {
		fmt.Fprintln(os.Stderr, "scrubbench scenario:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", path)

	if *baseline != "" {
		base, err := benchcmp.Load(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scrubbench scenario:", err)
			os.Exit(1)
		}
		deltas := benchcmp.Compare(base, run, *threshold)
		for confirm := 0; confirm < 2 && len(benchcmp.Regressions(deltas)) > 0; confirm++ {
			fmt.Fprintln(os.Stderr, "scrubbench scenario: possible regression, re-running to confirm")
			rerun, err := runScenarioBench(*quick, os.Stderr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scrubbench scenario:", err)
				os.Exit(1)
			}
			run = bestOf(run, rerun)
			if err := run.Write(path); err != nil {
				fmt.Fprintln(os.Stderr, "scrubbench scenario:", err)
				os.Exit(1)
			}
			deltas = benchcmp.Compare(base, run, *threshold)
		}
		for _, d := range deltas {
			fmt.Println(d)
		}
		if regs := benchcmp.Regressions(deltas); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "scrubbench scenario: %d regression(s) beyond %.0f%%\n", len(regs), *threshold*100)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "no regressions vs", *baseline)
	}
}

// scenarioArrayConfig is the shrunk declustered array the rebuild stages
// run: small enough that a full rebuild finishes in simulated minutes.
func scenarioArrayConfig() raidsim.Config {
	m := disk.FujitsuMAX3073RC()
	m.CapacityBytes = 64 << 20
	m.Cylinders = 100
	return raidsim.Config{Disks: 6, Model: m, Layout: raidsim.LayoutDeclustered, StripeWidth: 4}
}

// runScenarioBench executes the scenario suite and assembles the run
// record. progress receives one line per finished benchmark (may be nil).
func runScenarioBench(quick bool, progress *os.File) (*benchcmp.Run, error) {
	run := &benchcmp.Run{
		Schema:    benchcmp.Schema,
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Quick:     quick,
	}
	add := func(r benchcmp.Result, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
		run.Results = append(run.Results, r)
		if progress != nil {
			fmt.Fprintf(progress, "%-28s %12.0f ns/op %8.1f allocs/op %12.0f events/sec\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
		}
		return nil
	}

	ssdOps, simDur, iters := int64(2_000_000), 2*time.Minute, 6
	if quick {
		ssdOps, simDur, iters = 500_000, time.Minute, 8
	}

	// Raw flash service loop: the pooled per-request fast path the SSD
	// zero-alloc pin protects, timed at benchmark scale.
	ssd := disk.MustNewSSD(disk.DemoSSD())
	sectors := ssd.Sectors()
	res, err := measure("scenario/ssd-service", iters, func() (uint64, error) {
		var now time.Duration
		lba := int64(0)
		for i := int64(0); i < ssdOps; i++ {
			lba = (lba + 7*64) % (sectors - 64)
			r, err := ssd.Service(disk.Request{Op: disk.OpRead, LBA: lba, Sectors: 64}, now)
			if err != nil {
				return 0, err
			}
			now = r.Done
		}
		return uint64(ssdOps), nil
	})
	if err == nil {
		res.Extra = map[string]float64{
			"requests_per_sec": float64(ssdOps) / (res.NsPerOp / 1e9),
		}
	}
	if err := add(res, err); err != nil {
		return nil, err
	}

	// Full System on the flash model: scrubber, Waiting policy, queue and
	// the closed-loop synthetic foreground workload.
	res, err = measure("scenario/ssd-scrub", iters, func() (uint64, error) {
		sys, err := core.New(nil,
			core.WithDevice(disk.DemoSSD()),
			core.WithPolicy(core.PolicyWaiting),
			core.WithRequestBytes(1<<20),
		)
		if err != nil {
			return 0, err
		}
		w := &replay.Synthetic{Seed: 11}
		if err := w.Start(sys.Sim, sys.Queue); err != nil {
			return 0, err
		}
		sys.Start()
		if err := sys.RunFor(context.Background(), simDur); err != nil {
			return 0, err
		}
		if sys.Report().ScrubMBps <= 0 {
			return 0, fmt.Errorf("SSD system never scrubbed")
		}
		return sys.Sim.Fired(), nil
	})
	if err := add(res, err); err != nil {
		return nil, err
	}

	// Declustered rebuild, alone and with a concurrent group scrub. Each
	// iteration rebuilds the whole array from scratch; the stats snapshot
	// must be identical every time or the stage fails.
	rebuild := func(name string, withScrub bool) (benchcmp.Result, error) {
		var snapshot string
		res, err := measure(name, iters, func() (uint64, error) {
			g, err := raidsim.New(scenarioArrayConfig())
			if err != nil {
				return 0, err
			}
			if err := g.FailDisk(0); err != nil {
				return 0, err
			}
			var done time.Duration
			if err := g.StartRebuild(0, func(now time.Duration) { done = now }); err != nil {
				return 0, err
			}
			if withScrub {
				if err := g.StartScrub(nil); err != nil {
					return 0, err
				}
			}
			if err := g.Sim().RunUntil(time.Hour); err != nil {
				return 0, err
			}
			if done == 0 {
				return 0, fmt.Errorf("rebuild never finished")
			}
			snap := fmt.Sprintf("%+v done=%v", g.Stats(), done)
			if snapshot == "" {
				snapshot = snap
			} else if snap != snapshot {
				return 0, fmt.Errorf("group stats diverged across iterations:\n%s\nvs\n%s", snap, snapshot)
			}
			return g.Sim().Fired(), nil
		})
		if err != nil {
			return res, err
		}
		return res, nil
	}
	res, err = rebuild("scenario/declustered-rebuild", false)
	if err := add(res, err); err != nil {
		return nil, err
	}
	res, err = rebuild("scenario/declustered-scrub", true)
	if err := add(res, err); err != nil {
		return nil, err
	}

	// BSA replay: the scheduler's learn-and-segregate path under a trace
	// with a planted bad-sector population and bounded retries.
	spec, ok := trace.ByName("TPCdisk66")
	if !ok {
		return nil, fmt.Errorf("scenario/sched-bsa: unknown catalog trace")
	}
	dur := 60 * time.Second
	if quick {
		dur = 20 * time.Second
	}
	tr := spec.Generate(1, dur)
	res, err = measure("scenario/sched-bsa", iters, func() (uint64, error) {
		s := sim.New()
		d := disk.MustNew(disk.DemoSmall())
		for i := int64(0); i < 300; i++ {
			d.InjectLSE((i * 9973) % d.Sectors())
		}
		q := blockdev.NewQueue(s, d, iosched.NewBSA())
		q.SetRetryPolicy(blockdev.RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond})
		r, err := (&replay.Replayer{}).Run(s, q, tr.Records, tr.DiskSectors)
		if err != nil {
			return 0, err
		}
		if r.Requests != int64(len(tr.Records)) {
			return 0, fmt.Errorf("completed %d of %d records", r.Requests, len(tr.Records))
		}
		return s.Fired(), nil
	})
	if err == nil {
		res.Extra = map[string]float64{
			"records_per_sec": float64(len(tr.Records)) / (res.NsPerOp / 1e9),
		}
	}
	if err := add(res, err); err != nil {
		return nil, err
	}

	run.PeakRSSBytes = peakRSS()
	return run, nil
}
