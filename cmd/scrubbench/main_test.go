package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/benchcmp"
)

// TestRunSuiteQuick executes the real quick suite once and checks the run
// record is complete and internally consistent — every suite member
// present, time metrics positive, replay hot path allocation-free per
// record, fleet determinism implicitly asserted inside benchFleet.
func TestRunSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still runs full simulations")
	}
	run, err := runSuite(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Schema != benchcmp.Schema || !run.Quick {
		t.Fatalf("run header wrong: %+v", run)
	}
	if _, err := time.Parse("2006-01-02", run.Date); err != nil {
		t.Fatalf("run date %q not YYYY-MM-DD: %v", run.Date, err)
	}
	if run.PeakRSSBytes <= 0 {
		t.Fatalf("peak RSS %d, want > 0", run.PeakRSSBytes)
	}
	want := []string{
		"replay/TPCdisk66", "replay/HPc3t3d0",
		"policy/waiting", "policy/ar",
		"tuner/sweep",
		"fleet/workers-1", "fleet/workers-4", "fleet/workers-8",
		"shardfleet/shards-1", "shardfleet/shards-8",
	}
	if len(run.Results) != len(want) {
		t.Fatalf("suite produced %d results, want %d", len(run.Results), len(want))
	}
	for _, name := range want {
		r := run.Find(name)
		if r == nil {
			t.Fatalf("suite missing %s", name)
		}
		if r.NsPerOp <= 0 {
			t.Fatalf("%s: ns_per_op %v, want > 0", name, r.NsPerOp)
		}
		if r.CalNs <= 0 {
			t.Fatalf("%s: calibration missing", name)
		}
	}
	for _, name := range []string{"replay/TPCdisk66", "replay/HPc3t3d0"} {
		r := run.Find(name)
		// The tentpole's acceptance bar: steady-state replay allocates a
		// fixed handful per run (Result header), not per record.
		if r.AllocsPerOp > 8 {
			t.Fatalf("%s: %v allocs per replay, want fixed overhead only", name, r.AllocsPerOp)
		}
		if r.Extra["records_per_sec"] <= 0 {
			t.Fatalf("%s: records_per_sec missing", name)
		}
		if r.EventsPerSec <= 0 {
			t.Fatalf("%s: events_per_sec missing", name)
		}
	}

	// Round-trip through the file format and self-compare: a run diffed
	// against itself must never regress.
	path := filepath.Join(t.TempDir(), "BENCH_self.json")
	if err := run.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := benchcmp.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if regs := benchcmp.Regressions(benchcmp.Compare(loaded, run, 0.15)); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v", regs)
	}
}

// TestRunSweepSmall executes the -max-drives sweep at toy scale and
// checks the record carries the throughput and footprint figures the
// datacenter runs are judged by.
func TestRunSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	run, err := runSweep(200, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.PeakRSSBytes <= 0 {
		t.Fatalf("peak RSS %d, want > 0", run.PeakRSSBytes)
	}
	var drives float64
	for _, name := range []string{"sweep/fixed", "sweep/waiting"} {
		r := run.Find(name)
		if r == nil {
			t.Fatalf("sweep missing %s", name)
		}
		if r.NsPerOp <= 0 || r.EventsPerSec <= 0 {
			t.Fatalf("%s: degenerate metrics %+v", name, r)
		}
		if r.Extra["members_per_sec"] <= 0 {
			t.Fatalf("%s: members_per_sec missing", name)
		}
		drives += r.Extra["drives"]
	}
	if drives != 200 {
		t.Fatalf("sweep covered %v drives, want all 200", drives)
	}
}

func TestBestOfPicksFasterSamplePerBenchmark(t *testing.T) {
	a := &benchcmp.Run{
		Schema: benchcmp.Schema, PeakRSSBytes: 100,
		Results: []benchcmp.Result{
			{Name: "x", NsPerOp: 50, EventsPerSec: 200, CalNs: 10},
			{Name: "y", NsPerOp: 90, EventsPerSec: 110, CalNs: 12},
		},
	}
	b := &benchcmp.Run{
		Schema: benchcmp.Schema, PeakRSSBytes: 300,
		Results: []benchcmp.Result{
			{Name: "x", NsPerOp: 70, EventsPerSec: 140, CalNs: 14},
			{Name: "y", NsPerOp: 60, EventsPerSec: 160, CalNs: 8},
		},
	}
	m := bestOf(a, b)
	if m.PeakRSSBytes != 300 {
		t.Fatalf("peak RSS %d, want max of both runs", m.PeakRSSBytes)
	}
	// x was faster in run a, y in run b; each must carry its own run's
	// calibration and throughput, never a mix.
	if x := m.Find("x"); x.NsPerOp != 50 || x.CalNs != 10 || x.EventsPerSec != 200 {
		t.Fatalf("x = %+v, want run a's sample", x)
	}
	if y := m.Find("y"); y.NsPerOp != 60 || y.CalNs != 8 || y.EventsPerSec != 160 {
		t.Fatalf("y = %+v, want run b's sample", y)
	}
	// Inputs untouched.
	if a.Results[1].NsPerOp != 90 || a.PeakRSSBytes != 100 {
		t.Fatalf("bestOf mutated its input: %+v", a)
	}
}

func TestCalibrateStable(t *testing.T) {
	a, b := calibrate(), calibrate()
	if a <= 0 || b <= 0 {
		t.Fatalf("calibration returned %v, %v", a, b)
	}
	ratio := a / b
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("back-to-back calibrations differ by %vx", ratio)
	}
}

func TestPeakRSS(t *testing.T) {
	if rss := peakRSS(); rss <= 0 {
		t.Fatalf("peakRSS = %d, want > 0", rss)
	}
	if _, err := os.Stat("/proc/self/status"); err != nil {
		t.Log("no /proc on this platform; MemStats fallback exercised")
	}
}
