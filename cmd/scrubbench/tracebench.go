// scrubbench trace: the ingestion benchmark suite. It fabricates
// real-format trace files of benchmark size (MSR-Cambridge CSV, HP
// Cello/SRT text, blktrace binary) from a deterministic generator,
// then times the full pipeline against them:
//
//	trace/parse-msr       stream-decode the MSR CSV (records/sec)
//	trace/parse-cello     stream-decode the SRT text export
//	trace/parse-blktrace  stream-decode the blktrace binary log
//	trace/cache-build     compile the generator to the columnar cache
//	trace/cache-read      stream the columnar cache back
//	trace/replay-stream   open-loop replay of the cache through CFQ
//
// The replay stage doubles as the streaming-path acceptance proof: the
// full suite pushes a 10M-record trace through RunSource's bounded
// window (constant memory — the suite's peak RSS is recorded in the
// emitted BENCH_TRACE_*.json), and a bulk-vs-stream parity check on a
// materialized prefix fails the run outright if the streaming replay
// diverges from the slice path by a single bit.
//
// Usage:
//
//	scrubbench trace [-quick] [-o out.json] [-baseline base.json] [-threshold 0.25]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/benchcmp"
	"repro/internal/blockdev"
	"repro/internal/disk"
	"repro/internal/iosched"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

func traceMain(argv []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	quick := fs.Bool("quick", false, "CI-sized suite: smaller fixtures, shorter replay")
	out := fs.String("o", "", "output path (default BENCH_TRACE_<date>.json)")
	baseline := fs.String("baseline", "", "baseline BENCH_TRACE_*.json to compare against")
	threshold := fs.Float64("threshold", 0.25, "tolerated relative regression vs the baseline")
	fs.Parse(argv)

	run, err := runTraceBench(*quick, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrubbench trace:", err)
		os.Exit(1)
	}
	run.Quick = *quick

	path := *out
	if path == "" {
		path = "BENCH_TRACE_" + run.Date + ".json"
	}
	if err := run.Write(path); err != nil {
		fmt.Fprintln(os.Stderr, "scrubbench trace:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", path)

	if *baseline != "" {
		base, err := benchcmp.Load(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scrubbench trace:", err)
			os.Exit(1)
		}
		deltas := benchcmp.Compare(base, run, *threshold)
		for confirm := 0; confirm < 2 && len(benchcmp.Regressions(deltas)) > 0; confirm++ {
			fmt.Fprintln(os.Stderr, "scrubbench trace: possible regression, re-running to confirm")
			rerun, err := runTraceBench(*quick, os.Stderr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scrubbench trace:", err)
				os.Exit(1)
			}
			rerun.Quick = *quick
			run = bestOf(run, rerun)
			if err := run.Write(path); err != nil {
				fmt.Fprintln(os.Stderr, "scrubbench trace:", err)
				os.Exit(1)
			}
			deltas = benchcmp.Compare(base, run, *threshold)
		}
		for _, d := range deltas {
			fmt.Println(d)
		}
		if regs := benchcmp.Regressions(deltas); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "scrubbench trace: %d regression(s) beyond %.0f%%\n", len(regs), *threshold*100)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "no regressions vs", *baseline)
	}
}

// traceGen is the fixture workload: a deterministic LCG over a metronome
// arrival clock. The 8 ms cadence (125 req/s) stays inside the modeled
// drive's random-I/O service capacity, so the open-loop replay stage is
// sustainable — backlog stays bounded no matter how many records stream
// through.
type traceGen struct {
	n, count int64
	step     time.Duration
	lcg      uint64
	sectors  int64
}

func newTraceGen(count, sectors int64) *traceGen {
	return &traceGen{count: count, step: 8 * time.Millisecond, sectors: sectors}
}

// Next implements trace.Source.
func (g *traceGen) Next(rec *trace.Record) error {
	if g.n >= g.count {
		return io.EOF
	}
	g.lcg = g.lcg*6364136223846793005 + 1442695040888963407
	g.n++
	rec.Arrival = time.Duration(g.n) * g.step
	rec.Sectors = 8 << (g.lcg >> 62)
	rec.LBA = int64(g.lcg%uint64(g.sectors-rec.Sectors)) &^ 7
	rec.Write = g.lcg&(1<<8) != 0
	return nil
}

// Reset implements trace.Source.
func (g *traceGen) Reset() error { g.n, g.lcg = 0, 0; return nil }

// DiskSectors implements trace.Source.
func (g *traceGen) DiskSectors() int64 { return g.sectors }

// Name implements trace.Source.
func (g *traceGen) Name() string { return "tracebench" }

// writeFixture streams gen through write into path — fixtures of any
// size are fabricated without ever materializing the records.
func writeFixture(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runTraceBench executes the ingestion suite and assembles the run
// record. progress receives one line per finished benchmark (may be nil).
func runTraceBench(quick bool, progress *os.File) (*benchcmp.Run, error) {
	run := &benchcmp.Run{
		Schema:    benchcmp.Schema,
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Quick:     quick,
	}
	add := func(r benchcmp.Result, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
		run.Results = append(run.Results, r)
		if progress != nil {
			fmt.Fprintf(progress, "%-22s %12.0f ns/op %8.1f allocs/op %12.0f records/sec\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.Extra["records_per_sec"])
		}
		return nil
	}

	// Fixture sizes: the parse/cache stages run over parseN records, the
	// replay stage over replayN. The full suite's 10M-record replay is
	// the ISSUE's streaming acceptance case.
	parseN, replayN, parityN := int64(2_000_000), int64(10_000_000), int64(100_000)
	parseIters, replayIters := 3, 1
	if quick {
		parseN, replayN = 250_000, 1_000_000
		parseIters, replayIters = 3, 2
	}

	m := disk.HitachiUltrastar15K450()
	d, err := disk.New(m)
	if err != nil {
		return nil, err
	}
	sectors := d.Sectors()

	dir, err := os.MkdirTemp("", "scrubbench-trace")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Fabricate the real-format fixtures, streaming end to end.
	msrPath := filepath.Join(dir, "fixture.msr.csv")
	celloPath := filepath.Join(dir, "fixture.srt")
	blkPath := filepath.Join(dir, "fixture.blktrace")
	if err := writeFixture(msrPath, func(w io.Writer) error {
		return trace.WriteMSR(w, newTraceGen(parseN, sectors), "bench", 0)
	}); err != nil {
		return nil, err
	}
	if err := writeFixture(celloPath, func(w io.Writer) error {
		return trace.WriteCello(w, newTraceGen(parseN, sectors), 0)
	}); err != nil {
		return nil, err
	}
	if err := writeFixture(blkPath, func(w io.Writer) error {
		return trace.WriteBlktrace(w, newTraceGen(parseN, sectors), 0)
	}); err != nil {
		return nil, err
	}

	// Parse stages: one resettable source per format, drained per
	// iteration. Record count is the throughput unit.
	parseStage := func(name, path string, format trace.Format) (benchcmp.Result, error) {
		src, err := trace.Open(path, format)
		if err != nil {
			return benchcmp.Result{Name: name}, err
		}
		defer trace.CloseSource(src)
		res, err := measure(name, parseIters, func() (uint64, error) {
			if err := src.Reset(); err != nil {
				return 0, err
			}
			n, _, err := trace.Count(src)
			if err != nil {
				return 0, err
			}
			if n != parseN {
				return 0, fmt.Errorf("decoded %d of %d records", n, parseN)
			}
			return uint64(n), nil
		})
		if err != nil {
			return res, err
		}
		res.Extra = map[string]float64{
			"records_per_sec": float64(parseN) / (res.NsPerOp / 1e9),
		}
		return res, nil
	}
	for _, st := range []struct {
		name   string
		path   string
		format trace.Format
	}{
		{"trace/parse-msr", msrPath, trace.FormatMSR},
		{"trace/parse-cello", celloPath, trace.FormatCello},
		{"trace/parse-blktrace", blkPath, trace.FormatBlktrace},
	} {
		if err := add(parseStage(st.name, st.path, st.format)); err != nil {
			return nil, err
		}
	}

	// Cache build: compile the generator to the columnar format.
	cachePath := filepath.Join(dir, "fixture.cache")
	gen := newTraceGen(parseN, sectors)
	res, err := measure("trace/cache-build", parseIters, func() (uint64, error) {
		if err := gen.Reset(); err != nil {
			return 0, err
		}
		n, err := trace.BuildCache(cachePath, gen)
		if err != nil {
			return 0, err
		}
		return uint64(n), nil
	})
	if err == nil {
		res.Extra = map[string]float64{
			"records_per_sec": float64(parseN) / (res.NsPerOp / 1e9),
		}
	}
	if err := add(res, err); err != nil {
		return nil, err
	}

	// Cache read: stream the compiled cache back.
	if err := add(parseStage("trace/cache-read", cachePath, trace.FormatCache)); err != nil {
		return nil, err
	}

	// Replay: an open-loop streaming replay of a replayN-record cache
	// through the CFQ block layer. This is the big one — the full suite
	// replays 10M records through the bounded window, and the run's peak
	// RSS (recorded below) is the constant-memory evidence.
	replayCache := filepath.Join(dir, "replay.cache")
	if _, err := trace.BuildCache(replayCache, newTraceGen(replayN, sectors)); err != nil {
		return nil, err
	}
	rsrc, err := trace.OpenCache(replayCache)
	if err != nil {
		return nil, err
	}
	defer rsrc.Close()
	s := sim.New()
	q := blockdev.NewQueue(s, d, iosched.NewCFQ())
	rp := &replay.Replayer{}
	res, err = measure("trace/replay-stream", replayIters, func() (uint64, error) {
		if err := rsrc.Reset(); err != nil {
			return 0, err
		}
		f0 := s.Fired()
		r, err := rp.RunSource(s, q, rsrc, sectors)
		if err != nil {
			return 0, err
		}
		if r.Requests != replayN {
			return 0, fmt.Errorf("completed %d of %d records", r.Requests, replayN)
		}
		return s.Fired() - f0, nil
	})
	if err == nil {
		res.Extra = map[string]float64{
			"records_per_sec": float64(replayN) / (res.NsPerOp / 1e9),
		}
	}
	if err := add(res, err); err != nil {
		return nil, err
	}

	// Parity gate: the streaming path must agree with the slice path bit
	// for bit. Materialize a prefix of the replay cache, run it down both
	// paths from identical initial states, and fail the suite on any
	// difference — timing is irrelevant if the answers diverge.
	if err := traceParityCheck(replayCache, m, sectors, parityN); err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "%-22s ok: bulk and streaming replays agree bit-for-bit over %d records\n",
			"trace/parity", parityN)
	}

	run.PeakRSSBytes = peakRSS()
	return run, nil
}

// traceParityCheck replays the first n records of the cache at path down
// the bulk (slice) and streaming paths on fresh, identical stacks and
// demands bit-identical results.
func traceParityCheck(path string, m disk.Model, sectors, n int64) error {
	src, err := trace.OpenCache(path)
	if err != nil {
		return err
	}
	defer src.Close()

	tr, err := trace.ReadAll(trace.Limit(src, n))
	if err != nil {
		return err
	}
	if int64(len(tr.Records)) != n {
		return fmt.Errorf("trace/parity: materialized %d of %d records", len(tr.Records), n)
	}

	stack := func() (*sim.Simulator, *blockdev.Queue, error) {
		s := sim.New()
		d, err := disk.New(m)
		if err != nil {
			return nil, nil, err
		}
		return s, blockdev.NewQueue(s, d, iosched.NewCFQ()), nil
	}

	s1, q1, err := stack()
	if err != nil {
		return err
	}
	bulk, err := (&replay.Replayer{}).Run(s1, q1, tr.Records, sectors)
	if err != nil {
		return err
	}

	if err := src.Reset(); err != nil {
		return err
	}
	s2, q2, err := stack()
	if err != nil {
		return err
	}
	stream, err := (&replay.Replayer{}).RunSource(s2, q2, trace.Limit(src, n), sectors)
	if err != nil {
		return err
	}

	type cmp struct {
		what       string
		bulk, strm float64
	}
	checks := []cmp{
		{"requests", float64(bulk.Requests), float64(stream.Requests)},
		{"bytes", float64(bulk.Bytes), float64(stream.Bytes)},
		{"span_ns", float64(bulk.Span), float64(stream.Span)},
		{"resp_total", bulk.RespTotal, stream.RespTotal},
		{"resp_max", bulk.RespMax, stream.RespMax},
		{"wait_total", bulk.WaitTotal, stream.WaitTotal},
		{"wait_max", bulk.WaitMax, stream.WaitMax},
		{"mean_response", bulk.MeanResponse(), stream.MeanResponse()},
		{"mean_wait", bulk.MeanWait(), stream.MeanWait()},
	}
	for _, c := range checks {
		if c.bulk != c.strm {
			return fmt.Errorf("trace/parity: %s diverged: bulk %v vs stream %v", c.what, c.bulk, c.strm)
		}
	}
	return nil
}
