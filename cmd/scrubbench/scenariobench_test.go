package main

import (
	"path/filepath"
	"testing"

	"repro/internal/benchcmp"
)

// TestRunScenarioBenchQuick executes the real quick scenario suite once
// and checks the record: every stage present with positive timing, the
// SSD service loop allocation-free, and a self-comparison that never
// regresses. The per-iteration determinism gates on the rebuild stages
// run implicitly inside runScenarioBench.
func TestRunScenarioBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still runs full simulations")
	}
	run, err := runScenarioBench(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Schema != benchcmp.Schema || !run.Quick {
		t.Fatalf("run header wrong: %+v", run)
	}
	want := []string{
		"scenario/ssd-service", "scenario/ssd-scrub",
		"scenario/declustered-rebuild", "scenario/declustered-scrub",
		"scenario/sched-bsa",
	}
	if len(run.Results) != len(want) {
		t.Fatalf("suite produced %d results, want %d", len(run.Results), len(want))
	}
	for _, name := range want {
		r := run.Find(name)
		if r == nil {
			t.Fatalf("suite missing %s", name)
		}
		if r.NsPerOp <= 0 || r.CalNs <= 0 {
			t.Fatalf("%s: incomplete sample %+v", name, r)
		}
		if r.EventsPerSec <= 0 {
			t.Fatalf("%s: events_per_sec missing", name)
		}
	}
	// The flash fast path stays allocation-free at benchmark scale, the
	// same budget the disk package's zero-alloc pin enforces per request.
	if r := run.Find("scenario/ssd-service"); r.AllocsPerOp != 0 {
		t.Fatalf("ssd-service allocates %.1f per run, want 0", r.AllocsPerOp)
	}

	path := filepath.Join(t.TempDir(), "BENCH_SCENARIO_self.json")
	if err := run.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := benchcmp.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if regs := benchcmp.Regressions(benchcmp.Compare(loaded, run, 0.25)); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v", regs)
	}
}
