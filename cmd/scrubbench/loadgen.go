package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchcmp"
	"repro/internal/obs"
	"repro/internal/scrubd"
)

// loadgenMain is the "scrubbench loadgen" subcommand: a service-level
// load test of the scrubd engine behind its real HTTP surface. It runs
// in-process over a loopback listener so the numbers measure the
// service core (codec, sharded engine, decision path), not container
// networking:
//
//  1. Feed phase: -devices synthetic devices, -records feed records
//     each, POSTed in batches by -clients concurrent feeders (429
//     backpressure answered by draining /v1/sync, then retrying).
//  2. Query phase: -queries GET /v1/decide calls from -clients
//     concurrent clients, per-request latency into fixed-bucket
//     histograms merged for p50/p90/p99.
//  3. Determinism spot check: a subset of the feed replayed twice
//     through fresh engines at different batch sizes must produce
//     byte-identical decision encodings and metric snapshots.
//
// Results land in a BENCH_LOADGEN_<date>.json (benchcmp schema) with
// feed records/sec, query qps and latency percentiles in Extra; with
// -baseline the run gates on regressions like the main suite.
func loadgenMain(argv []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	quick := fs.Bool("quick", false, "CI-sized run: fewer devices and queries")
	devices := fs.Int("devices", 50_000, "device count")
	records := fs.Int("records", 32, "feed records per device")
	queries := fs.Int("queries", 200_000, "decision queries")
	clients := fs.Int("clients", 8, "concurrent feeder/query clients")
	shards := fs.Int("shards", 0, "engine shards (0 = default)")
	seed := fs.Int64("seed", 1, "workload seed")
	out := fs.String("o", "", "output path (default BENCH_LOADGEN_<date>.json)")
	baseline := fs.String("baseline", "", "baseline BENCH_LOADGEN_*.json to compare against")
	threshold := fs.Float64("threshold", 0.25, "tolerated relative regression vs the baseline")
	fs.Parse(argv)

	cfg := loadgenConfig{
		devices: *devices,
		records: *records,
		queries: *queries,
		clients: *clients,
		shards:  *shards,
		seed:    *seed,
	}
	if *quick {
		// Still past the 10k-device bar the service must sustain; only
		// the per-device and query volume shrinks.
		cfg.devices, cfg.records, cfg.queries = 12_000, 24, 60_000
	}

	run, err := runLoadgen(cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrubbench loadgen:", err)
		os.Exit(1)
	}
	run.Quick = *quick

	path := *out
	if path == "" {
		path = "BENCH_LOADGEN_" + run.Date + ".json"
	}
	if err := run.Write(path); err != nil {
		fmt.Fprintln(os.Stderr, "scrubbench loadgen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", path)

	if *baseline != "" {
		base, err := benchcmp.Load(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scrubbench loadgen:", err)
			os.Exit(1)
		}
		deltas := benchcmp.Compare(base, run, *threshold)
		for confirm := 0; confirm < 2 && len(benchcmp.Regressions(deltas)) > 0; confirm++ {
			fmt.Fprintln(os.Stderr, "scrubbench loadgen: possible regression, re-running to confirm")
			rerun, err := runLoadgen(cfg, os.Stderr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scrubbench loadgen:", err)
				os.Exit(1)
			}
			rerun.Quick = *quick
			run = bestOf(run, rerun)
			if err := run.Write(path); err != nil {
				fmt.Fprintln(os.Stderr, "scrubbench loadgen:", err)
				os.Exit(1)
			}
			deltas = benchcmp.Compare(base, run, *threshold)
		}
		for _, d := range deltas {
			fmt.Println(d)
		}
		if regs := benchcmp.Regressions(deltas); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "scrubbench loadgen: %d regression(s) beyond %.0f%%\n", len(regs), *threshold*100)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "no regressions vs", *baseline)
	}
}

type loadgenConfig struct {
	devices, records, queries, clients, shards int
	seed                                       int64
}

// loadgenDevName writes the i'th device name ("d0000123") into buf.
func loadgenDevName(buf []byte, i int) []byte {
	buf = append(buf[:0], 'd')
	s := strconv.Itoa(i)
	for pad := 7 - len(s); pad > 0; pad-- {
		buf = append(buf, '0')
	}
	return append(buf, s...)
}

// loadgenGaps returns device i's deterministic inter-arrival gaps in
// µs: an AR(1)-shaped sequence around a per-device mean, so the online
// AR fitters have real structure to chase.
func loadgenGaps(seed int64, i, n int) []int64 {
	rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
	mean := 20_000 + rng.Int63n(180_000) // 20–200 ms
	gaps := make([]int64, n)
	dev := 0.0
	for j := range gaps {
		dev = 0.6*dev + rng.NormFloat64()*float64(mean)/5
		g := mean + int64(dev)
		if g < 1_000 {
			g = 1_000
		}
		gaps[j] = g
	}
	return gaps
}

func runLoadgen(cfg loadgenConfig, progress *os.File) (*benchcmp.Run, error) {
	run := &benchcmp.Run{
		Schema:    benchcmp.Schema,
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
	}

	if err := loadgenDeterminism(cfg); err != nil {
		return nil, err
	}

	eng := scrubd.NewEngine(scrubd.Config{Shards: cfg.shards})
	eng.Start()
	defer eng.Close()
	srv := scrubd.NewServer(eng, scrubd.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	tr := &http.Transport{MaxIdleConnsPerHost: cfg.clients * 2}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	calNs := calibrate()

	feedRes, lastAt, err := loadgenFeed(cfg, client, base, progress)
	if err != nil {
		return nil, err
	}
	feedRes.CalNs = calNs
	run.Results = append(run.Results, feedRes)

	queryRes, err := loadgenQuery(cfg, client, base, lastAt, progress)
	if err != nil {
		return nil, err
	}
	queryRes.CalNs = calNs
	run.Results = append(run.Results, queryRes)

	run.PeakRSSBytes = peakRSS()
	return run, nil
}

// loadgenFeed pushes the synthetic feed through POST /v1/feed and
// returns per-device last timestamps for the query phase.
func loadgenFeed(cfg loadgenConfig, client *http.Client, base string, progress *os.File) (benchcmp.Result, []int64, error) {
	res := benchcmp.Result{Name: "loadgen/feed"}
	lastAt := make([]int64, cfg.devices)
	var firedBackpressure atomic.Int64

	const batchDevs = 64 // devices per POST body
	type job struct{ lo, hi int }
	jobs := make(chan job, cfg.clients)
	errs := make(chan error, cfg.clients)
	var wg sync.WaitGroup

	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var body bytes.Buffer
			nameBuf := make([]byte, 0, 16)
			for j := range jobs {
				body.Reset()
				body.WriteString(`{"records":[`)
				first := true
				for i := j.lo; i < j.hi; i++ {
					at := int64(1)
					for _, g := range loadgenGaps(cfg.seed, i, cfg.records) {
						at += g
						if !first {
							body.WriteByte(',')
						}
						first = false
						body.WriteString(`{"dev":"`)
						body.Write(loadgenDevName(nameBuf, i))
						body.WriteString(`","at_us":`)
						body.WriteString(strconv.FormatInt(at, 10))
						body.WriteString(`,"bytes":4096}`)
					}
					lastAt[i] = at
				}
				body.WriteString(`]}`)
				if err := loadgenPost(client, base+"/v1/feed", body.Bytes(), &firedBackpressure); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for lo := 0; lo < cfg.devices; lo += batchDevs {
		hi := lo + batchDevs
		if hi > cfg.devices {
			hi = cfg.devices
		}
		jobs <- job{lo, hi}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return res, nil, err
	default:
	}
	if err := loadgenSync(client, base); err != nil {
		return res, nil, err
	}
	elapsed := time.Since(start)

	total := cfg.devices * cfg.records
	res.NsPerOp = float64(elapsed.Nanoseconds())
	res.EventsPerSec = float64(total) / elapsed.Seconds()
	res.Extra = map[string]float64{
		"devices":      float64(cfg.devices),
		"records":      float64(total),
		"clients":      float64(cfg.clients),
		"backpressure": float64(firedBackpressure.Load()),
	}
	if progress != nil {
		fmt.Fprintf(progress, "loadgen/feed   %8d devices %9d records %12.0f records/sec (%d backpressure)\n",
			cfg.devices, total, res.EventsPerSec, firedBackpressure.Load())
	}
	return res, lastAt, nil
}

// loadgenPost sends one feed batch, answering 429 backpressure by
// draining the queues via /v1/sync and resending. The engine's stale
// drop makes resending the full body safe: already-applied records are
// idempotently ignored.
func loadgenPost(client *http.Client, url string, body []byte, backpressure *atomic.Int64) error {
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return nil
		case http.StatusTooManyRequests:
			if attempt > 50 {
				return fmt.Errorf("feed: backpressure persisted for %d retries", attempt)
			}
			backpressure.Add(1)
			if err := loadgenSync(client, url[:len(url)-len("/v1/feed")]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("feed: unexpected status %d", resp.StatusCode)
		}
	}
}

func loadgenSync(client *http.Client, base string) error {
	resp, err := client.Post(base+"/v1/sync", "application/json", nil)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("sync: unexpected status %d", resp.StatusCode)
	}
	return nil
}

// loadgenQuery fires the decision-query phase and reports throughput
// plus latency percentiles.
func loadgenQuery(cfg loadgenConfig, client *http.Client, base string, lastAt []int64, progress *os.File) (benchcmp.Result, error) {
	res := benchcmp.Result{Name: "loadgen/decide"}
	perClient := cfg.queries / cfg.clients
	hists := make([]*obs.Histogram, cfg.clients)
	errs := make(chan error, cfg.clients)
	var wg sync.WaitGroup

	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		hists[c] = obs.NewHistogram(nil)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + 7_777_777 + int64(c)))
			h := hists[c]
			nameBuf := make([]byte, 0, 16)
			var urlBuf bytes.Buffer
			for q := 0; q < perClient; q++ {
				i := rng.Intn(cfg.devices)
				urlBuf.Reset()
				urlBuf.WriteString(base)
				urlBuf.WriteString("/v1/decide?dev=")
				urlBuf.Write(loadgenDevName(nameBuf, i))
				urlBuf.WriteString("&now_us=")
				urlBuf.WriteString(strconv.FormatInt(lastAt[i]+rng.Int63n(1_000_000), 10))
				t0 := time.Now()
				resp, err := client.Get(urlBuf.String())
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				h.Observe(time.Since(t0))
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("decide: unexpected status %d", resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return res, err
	default:
	}
	elapsed := time.Since(start)

	merged := obs.NewHistogram(nil)
	for _, h := range hists {
		if err := merged.Merge(h); err != nil {
			return res, err
		}
	}
	total := perClient * cfg.clients
	res.NsPerOp = float64(elapsed.Nanoseconds()) / float64(total)
	res.EventsPerSec = float64(total) / elapsed.Seconds()
	res.Extra = map[string]float64{
		"queries": float64(total),
		"clients": float64(cfg.clients),
		"p50_us":  float64(merged.Quantile(0.50)) / 1e3,
		"p90_us":  float64(merged.Quantile(0.90)) / 1e3,
		"p99_us":  float64(merged.Quantile(0.99)) / 1e3,
	}
	if progress != nil {
		fmt.Fprintf(progress, "loadgen/decide %8d queries %12.0f qps   p50 %.0fµs p90 %.0fµs p99 %.0fµs\n",
			total, res.EventsPerSec, res.Extra["p50_us"], res.Extra["p90_us"], res.Extra["p99_us"])
	}
	return res, nil
}

// loadgenDeterminism replays a slice of the synthetic feed twice
// through fresh engines — single batch vs. many small batches, applied
// manually — and fails the run unless decision encodings and metric
// snapshots are byte-identical. The same invariant the scrubd test
// battery pins, checked here against this binary's actual workload.
func loadgenDeterminism(cfg loadgenConfig) error {
	devs := cfg.devices
	if devs > 1000 {
		devs = 1000
	}
	replay := func(batch int) ([]byte, string, error) {
		eng := scrubd.NewEngine(scrubd.Config{Shards: cfg.shards})
		var recs []scrubd.Record
		nameBuf := make([]byte, 0, 16)
		flush := func() error {
			for len(recs) > 0 {
				n, err := eng.IngestBatch(recs)
				eng.ApplyQueued()
				if err != nil {
					return err
				}
				recs = recs[n:]
			}
			recs = recs[:0]
			return nil
		}
		last := make([]int64, devs)
		for i := 0; i < devs; i++ {
			at := int64(1)
			for _, g := range loadgenGaps(cfg.seed, i, cfg.records) {
				at += g
				recs = append(recs, scrubd.Record{Dev: append([]byte(nil), loadgenDevName(nameBuf, i)...), AtUs: at, Bytes: 4096})
				if len(recs) >= batch {
					if err := flush(); err != nil {
						return nil, "", err
					}
				}
			}
			last[i] = at
		}
		if err := flush(); err != nil {
			return nil, "", err
		}
		var dec scrubd.Decision
		var buf []byte
		for i := 0; i < devs; i++ {
			name := loadgenDevName(nameBuf, i)
			for _, idle := range []int64{0, 100_000, 600_000} {
				if err := eng.Decide(name, last[i]+idle, &dec); err != nil {
					return nil, "", err
				}
				buf = scrubd.AppendDecision(buf, &dec)
			}
		}
		snap, err := eng.ObsSnapshot()
		if err != nil {
			return nil, "", err
		}
		var sb bytes.Buffer
		if err := snap.WriteJSON(&sb); err != nil {
			return nil, "", err
		}
		return buf, sb.String(), nil
	}
	d1, s1, err := replay(1 << 20)
	if err != nil {
		return err
	}
	d2, s2, err := replay(97)
	if err != nil {
		return err
	}
	if !bytes.Equal(d1, d2) {
		return fmt.Errorf("loadgen: decisions diverged across batch splits")
	}
	if s1 != s2 {
		return fmt.Errorf("loadgen: metric snapshots diverged across batch splits")
	}
	return nil
}
