// Command scrubbench runs the simulator's fixed benchmark suite and emits
// a machine-readable BENCH_<date>.json (see internal/benchcmp for the
// schema): wall-clock ns/op, allocs/op, simulator events/sec, suite peak
// RSS. It is the producing half of the benchmark-regression gate; CI runs
// it with -quick against a checked-in baseline and fails on regressions
// beyond the noise threshold.
//
// The suite covers the pooled hot paths end to end:
//
//	replay/<trace>       open-loop trace replay through CFQ (records/sec)
//	policy/waiting       full System, Waiting policy vs closed-loop workload
//	policy/ar            full System, AR policy vs the same workload
//	tuner/sweep          AutoTune threshold/size binary search
//	fleet/workers-N      tuned fleet advanced at 1/4/8 workers
//	shardfleet/shards-N  sharded engine campaign at 1 and 8 shards
//
// The fleet stages double-check determinism: per-member reports (and,
// for the sharded engine, the fleet report) must be byte-identical
// across worker and shard counts, or the run fails regardless of timing.
//
// With -max-drives the fixed suite is replaced by a datacenter-scale
// scrub-policy sweep through the sharded fleet engine: -max-drives
// members split across the policy families, executed over -shards
// stripes, with aggregate events/sec per policy and the sweep's peak
// RSS recorded in the emitted BENCH_*.json. Usage:
//
//	scrubbench [-quick] [-o out.json] [-baseline base.json] [-threshold 0.15]
//	scrubbench -max-drives 1000000 [-shards 64] [-o out.json]
//	scrubbench loadgen [-quick] [-devices N] [-o out.json] [-baseline base.json]
//	scrubbench trace [-quick] [-o out.json] [-baseline base.json]
//	scrubbench scenario [-quick] [-o out.json] [-baseline base.json]
//
// The loadgen subcommand load-tests the scrubd service core instead of
// the simulator: it stands up the engine plus its HTTP surface
// in-process, feeds tens of thousands of devices, and records feed
// throughput and decision-query latency percentiles (see loadgen.go).
// The trace subcommand benchmarks the streaming ingestion pipeline —
// real-format parsers, the columnar cache and constant-memory replay —
// and enforces bulk-vs-stream replay parity (see tracebench.go). The
// scenario subcommand times the scenario-diversity hot paths — the SSD
// service loop and scrub stack, declustered-parity rebuilds with and
// without a concurrent scrub, and the bad-sector-aware scheduler — with
// per-iteration determinism gates on the array stats (see
// scenariobench.go).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchcmp"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/iosched"
	"repro/internal/optimize"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		loadgenMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		traceMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scenario" {
		scenarioMain(os.Args[2:])
		return
	}
	quick := flag.Bool("quick", false, "CI-sized suite: shorter sims, fewer iterations")
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	baseline := flag.String("baseline", "", "baseline BENCH_*.json to compare against")
	threshold := flag.Float64("threshold", 0.15, "tolerated relative regression vs the baseline")
	maxDrives := flag.Int("max-drives", 0, "run a fleet sweep over this many simulated drives instead of the fixed suite")
	shards := flag.Int("shards", 64, "shard count for the -max-drives sweep")
	flag.Parse()

	var run *benchcmp.Run
	var err error
	if *maxDrives > 0 {
		run, err = runSweep(*maxDrives, *shards, os.Stderr)
	} else {
		run, err = runSuite(*quick, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrubbench:", err)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + run.Date + ".json"
	}
	if err := run.Write(path); err != nil {
		fmt.Fprintln(os.Stderr, "scrubbench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", path)

	if *maxDrives > 0 {
		// Sweep results are scale probes, not the regression suite; a
		// baseline of suite benchmarks has nothing to compare them to.
		return
	}
	if *baseline != "" {
		base, err := benchcmp.Load(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scrubbench:", err)
			os.Exit(1)
		}
		deltas := benchcmp.Compare(base, run, *threshold)
		// An apparent regression triggers up to two confirming re-runs,
		// keeping the better sample per benchmark each time. A real
		// slowdown regresses every time; a noise episode (a co-tenant
		// saturating the shared host) rarely outlasts three suites.
		for confirm := 0; confirm < 2 && len(benchcmp.Regressions(deltas)) > 0; confirm++ {
			fmt.Fprintln(os.Stderr, "scrubbench: possible regression, re-running suite to confirm")
			rerun, err := runSuite(*quick, os.Stderr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scrubbench:", err)
				os.Exit(1)
			}
			run = bestOf(run, rerun)
			if err := run.Write(path); err != nil {
				fmt.Fprintln(os.Stderr, "scrubbench:", err)
				os.Exit(1)
			}
			deltas = benchcmp.Compare(base, run, *threshold)
		}
		for _, d := range deltas {
			fmt.Println(d)
		}
		if regs := benchcmp.Regressions(deltas); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "scrubbench: %d regression(s) beyond %.0f%%\n", len(regs), *threshold*100)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "no regressions vs", *baseline)
	}
}

// bestOf merges two runs of the same suite, keeping for each benchmark
// the sample with the lower ns/op (wholesale, so its calibration and
// throughput figures stay consistent with the timing they came from).
func bestOf(a, b *benchcmp.Run) *benchcmp.Run {
	merged := *a
	if b.PeakRSSBytes > merged.PeakRSSBytes {
		merged.PeakRSSBytes = b.PeakRSSBytes
	}
	merged.Results = append([]benchcmp.Result(nil), a.Results...)
	for i, r := range merged.Results {
		if other := b.Find(r.Name); other != nil && other.NsPerOp < r.NsPerOp {
			merged.Results[i] = *other
		}
	}
	return &merged
}

// runSuite executes the fixed benchmark suite and assembles the run
// record. progress receives one line per finished benchmark (may be nil).
func runSuite(quick bool, progress *os.File) (*benchcmp.Run, error) {
	run := &benchcmp.Run{
		Schema:    benchcmp.Schema,
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Quick:     quick,
	}
	add := func(r benchcmp.Result, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
		run.Results = append(run.Results, r)
		if progress != nil {
			fmt.Fprintf(progress, "%-22s %12.0f ns/op %8.1f allocs/op %12.0f events/sec\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
		}
		return nil
	}

	for _, name := range []string{"TPCdisk66", "HPc3t3d0"} {
		r, err := benchReplay(name, quick)
		if err := add(r, err); err != nil {
			return nil, err
		}
	}
	for _, pol := range []core.PolicyKind{core.PolicyWaiting, core.PolicyAR} {
		r, err := benchPolicy(pol, quick)
		if err := add(r, err); err != nil {
			return nil, err
		}
	}
	if err := add(benchTuner(quick)); err != nil {
		return nil, err
	}
	fleetRes, err := benchFleet(quick)
	if err != nil {
		return nil, err
	}
	for _, r := range fleetRes {
		if err := add(r, nil); err != nil {
			return nil, err
		}
	}
	shardRes, err := benchShardFleet(quick)
	if err != nil {
		return nil, err
	}
	for _, r := range shardRes {
		if err := add(r, nil); err != nil {
			return nil, err
		}
	}

	run.PeakRSSBytes = peakRSS()
	return run, nil
}

// sweepPolicies are the scrub-policy families the sharded sweeps cover:
// the paper's baseline fixed-delay scrubber and the idle-waiting
// scheduler, each with a low background LSE arrival rate.
func sweepPolicies(m *disk.Model) []fleet.MemberClass {
	return []fleet.MemberClass{
		{
			Name: "fixed",
			Config: core.Config{
				Model:      m,
				Algorithm:  core.Sequential,
				Policy:     core.PolicyFixedDelay,
				Delay:      200 * time.Millisecond,
				ReqBytes:   256 << 10,
				AutoRepair: true,
				Faults:     fault.Uniform{RatePerHour: 2},
			},
		},
		{
			Name: "waiting",
			Config: core.Config{
				Model:         m,
				Algorithm:     core.Staggered,
				Regions:       64,
				Policy:        core.PolicyWaiting,
				WaitThreshold: 50 * time.Millisecond,
				ReqBytes:      256 << 10,
				AutoRepair:    true,
				Faults:        fault.Uniform{RatePerHour: 2},
			},
		},
	}
}

// benchShardFleet runs one small campaign through the sharded engine at
// 1 and 8 shards. Like benchFleet's worker sweep, timing is secondary to
// the built-in determinism gate: the fleet reports must be byte-identical
// across shard counts or the suite fails.
func benchShardFleet(quick bool) ([]benchcmp.Result, error) {
	drives, horizon, iters := 192, 2*time.Minute, 6
	if quick {
		drives, horizon, iters = 96, time.Minute, 8
	}
	m := disk.DemoSmall()
	classes := sweepPolicies(&m)
	for i := range classes {
		classes[i].Count = drives / len(classes)
	}

	var results []benchcmp.Result
	var snapshot string
	for _, shards := range []int{1, 8} {
		name := "shardfleet/shards-" + strconv.Itoa(shards)
		var snap string
		res, err := measure(name, iters, func() (uint64, error) {
			e, err := fleet.New(fleet.Config{
				Shards: shards,
				Slice:  horizon / 4,
				Seed:   29,
			}, classes)
			if err != nil {
				return 0, err
			}
			rep, err := e.Run(context.Background(), horizon)
			if err != nil {
				return 0, err
			}
			snap = fmt.Sprintf("%+v", *rep)
			return uint64(rep.Events), nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		res.Extra = map[string]float64{
			"drives":          float64(drives),
			"members_per_sec": float64(drives) / (res.NsPerOp / 1e9),
		}
		results = append(results, res)
		if snapshot == "" {
			snapshot = snap
		} else if snap != snapshot {
			return nil, fmt.Errorf("%s: fleet report diverged from shards-1 run:\n%s\nvs\n%s", name, snap, snapshot)
		}
	}
	return results, nil
}

// runSweep is the -max-drives mode: a datacenter-scale scrub-policy
// sweep through the sharded fleet engine. Each policy family gets an
// equal stripe of the drive budget and runs as one single-slice campaign
// (members hydrate, run to the horizon and finalize without ever holding
// more live state than the worker count), so the recorded peak RSS is
// the engine's true at-scale footprint.
func runSweep(maxDrives, shards int, progress *os.File) (*benchcmp.Run, error) {
	run := &benchcmp.Run{
		Schema:    benchcmp.Schema,
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
	}
	const horizon = 2 * time.Second
	m := disk.DemoSmall()
	classes := sweepPolicies(&m)
	per := maxDrives / len(classes)
	if per == 0 {
		return nil, fmt.Errorf("sweep: %d drives cannot cover %d policies", maxDrives, len(classes))
	}
	for i := range classes {
		classes[i].Count = per
	}
	classes[0].Count += maxDrives - per*len(classes)

	for _, cls := range classes {
		name := "sweep/" + cls.Name
		e, err := fleet.New(fleet.Config{Shards: shards, Seed: 17},
			[]fleet.MemberClass{cls})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		start := time.Now()
		rep, err := e.Run(context.Background(), horizon)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		res := benchcmp.Result{
			Name:         name,
			NsPerOp:      float64(elapsed.Nanoseconds()),
			EventsPerSec: float64(rep.Events) / elapsed.Seconds(),
			Extra: map[string]float64{
				"drives":          float64(cls.Count),
				"shards":          float64(shards),
				"members_per_sec": float64(cls.Count) / elapsed.Seconds(),
				"lses_found":      float64(rep.LSEsFound),
			},
		}
		run.Results = append(run.Results, res)
		if progress != nil {
			fmt.Fprintf(progress, "%-16s %9d drives %12.0f events/sec %10.0f members/sec %8.1fs\n",
				name, cls.Count, res.EventsPerSec, res.Extra["members_per_sec"], elapsed.Seconds())
		}
	}
	run.PeakRSSBytes = peakRSS()
	if progress != nil {
		fmt.Fprintf(progress, "sweep: %d drives total, peak RSS %.1f MB\n",
			maxDrives, float64(run.PeakRSSBytes)/1e6)
	}
	return run, nil
}

// measure runs fn iters times after one discarded warmup and fills in the
// metrics. Timing takes the best iteration — the minimum is the standard
// noise-robust statistic for benchmarks, since interference only ever adds
// time — while allocations average over all iterations (they are
// deterministic, and averaging smooths one-off pool growth). events
// reports the simulator events fired by one fn call (zero when not
// applicable).
func measure(name string, iters int, fn func() (events uint64, err error)) (benchcmp.Result, error) {
	res := benchcmp.Result{Name: name}
	if _, err := fn(); err != nil { // warmup: size pools and buffers
		return res, err
	}
	res.CalNs = calibrate()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	bestNs, bestEvents := int64(0), uint64(0)
	for i := 0; i < iters; i++ {
		start := time.Now()
		ev, err := fn()
		elapsed := time.Since(start).Nanoseconds()
		if err != nil {
			return res, err
		}
		if i == 0 || elapsed < bestNs {
			bestNs, bestEvents = elapsed, ev
		}
	}
	runtime.ReadMemStats(&ms1)

	res.NsPerOp = float64(bestNs)
	res.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
	if bestEvents > 0 && bestNs > 0 {
		res.EventsPerSec = float64(bestEvents) / (float64(bestNs) / 1e9)
	}
	return res, nil
}

// calSink keeps the calibration memory walk observable so the compiler
// cannot elide it.
var calSink uint64

// calibrate times a fixed reference workload — 100k pooled events
// through a fresh simulator (the suite's innermost loop) plus a strided
// walk over a working set far larger than L2 — and returns the best of 5
// runs. Measured next to every benchmark, it gives benchcmp a per-result
// host-speed reference so CPU frequency drift AND memory-bandwidth
// contention (a co-tenant saturating the shared LLC slows the big-trace
// replays far more than a cache-resident spin would admit) cancel out of
// the time comparisons.
func calibrate() float64 {
	const (
		reps   = 5
		width  = 256
		events = 100_000
		// Working set for the memory component: 8 MB of uint64s,
		// comfortably past typical per-core L2 so the walk pays the
		// same shared-cache/DRAM costs the trace replays do.
		words  = 1 << 20
		stride = 17 // odd stride, coprime with words: full-cycle walk
	)
	buf := make([]uint64, words)
	for i := range buf {
		buf[i] = uint64(i)
	}
	best := int64(0)
	for r := 0; r < reps; r++ {
		s := sim.New()
		fired := 0
		var tick sim.EventFunc
		tick = func(_ any, _ time.Duration) {
			fired++
			if fired < events {
				s.ScheduleAfter(time.Microsecond*time.Duration(1+fired%7), tick, nil)
			}
		}
		start := time.Now()
		for i := 0; i < width; i++ {
			s.ScheduleAfter(time.Microsecond, tick, nil)
		}
		if err := s.Run(); err != nil {
			return 0
		}
		idx, sum := uint64(0), uint64(0)
		for i := 0; i < 2*words; i++ {
			sum += buf[idx]
			idx = (idx + stride) % words
		}
		calSink += sum
		if ns := time.Since(start).Nanoseconds(); r == 0 || ns < best {
			best = ns
		}
	}
	return float64(best)
}

// benchReplay replays one catalog trace through CFQ on the paper's SAS
// drive, the steady-state regime of policy sweeps and tuner runs.
func benchReplay(name string, quick bool) (benchcmp.Result, error) {
	resName := "replay/" + name
	spec, ok := trace.ByName(name)
	if !ok {
		return benchcmp.Result{Name: resName}, fmt.Errorf("unknown catalog trace")
	}
	// Windows are sized per trace so every iteration replays enough
	// records for stable timing: TPCdisk66 is dense, HPc3t3d0 sparse.
	durs := map[string]time.Duration{"TPCdisk66": 60 * time.Second, "HPc3t3d0": 45 * time.Minute}
	dur, iters := durs[name], 12
	if dur == 0 {
		dur = 5 * time.Minute
	}
	if quick {
		dur, iters = dur/3, 10
	}
	tr := spec.Generate(1, dur)
	if len(tr.Records) == 0 {
		return benchcmp.Result{Name: resName}, fmt.Errorf("empty trace")
	}
	s := sim.New()
	d, err := disk.New(disk.HitachiUltrastar15K450())
	if err != nil {
		return benchcmp.Result{Name: resName}, err
	}
	q := blockdev.NewQueue(s, d, iosched.NewCFQ())
	rp := &replay.Replayer{}
	res, err := measure(resName, iters, func() (uint64, error) {
		f0 := s.Fired()
		r, err := rp.Run(s, q, tr.Records, tr.DiskSectors)
		if err != nil {
			return 0, err
		}
		if r.Requests != int64(len(tr.Records)) {
			return 0, fmt.Errorf("completed %d of %d records", r.Requests, len(tr.Records))
		}
		return s.Fired() - f0, nil
	})
	if err != nil {
		return res, err
	}
	res.Extra = map[string]float64{
		"records_per_sec": float64(len(tr.Records)) / (res.NsPerOp / 1e9),
	}
	return res, nil
}

// benchPolicy runs a full System (scrubber under the given policy) against
// the closed-loop synthetic foreground workload.
func benchPolicy(pol core.PolicyKind, quick bool) (benchcmp.Result, error) {
	name := "policy/" + map[core.PolicyKind]string{
		core.PolicyWaiting: "waiting",
		core.PolicyAR:      "ar",
	}[pol]
	simDur, iters := 5*time.Minute, 10
	if quick {
		simDur, iters = 90*time.Second, 12
	}
	build := func() (*core.System, *replay.Synthetic, error) {
		sys, err := core.New(nil,
			core.WithPolicy(pol),
			core.WithWaitThreshold(50*time.Millisecond),
			core.WithARThreshold(100*time.Millisecond),
		)
		if err != nil {
			return nil, nil, err
		}
		w := &replay.Synthetic{Seed: 11}
		if err := w.Start(sys.Sim, sys.Queue); err != nil {
			return nil, nil, err
		}
		sys.Start()
		return sys, w, nil
	}
	return measure(name, iters, func() (uint64, error) {
		sys, w, err := build() // fresh stack per iteration: cold pools included
		if err != nil {
			return 0, err
		}
		if err := sys.RunFor(context.Background(), simDur); err != nil {
			return 0, err
		}
		if w.Stats().Requests == 0 {
			return 0, fmt.Errorf("workload issued no requests")
		}
		return sys.Sim.Fired(), nil
	})
}

// benchTuner runs the AutoTune binary search over a catalog profile — the
// paper's "repeat the simulations to adapt the parameter values" loop,
// dominated by idle-interval simulation.
func benchTuner(quick bool) (benchcmp.Result, error) {
	const resName = "tuner/sweep"
	spec, ok := trace.ByName("MSRsrc11")
	if !ok {
		return benchcmp.Result{Name: resName}, fmt.Errorf("unknown catalog trace")
	}
	profDur, iters := 4*time.Hour, 5
	if quick {
		profDur, iters = 90*time.Minute, 8
	}
	profile := spec.Generate(3, profDur).Records
	goal := optimize.Goal{MeanSlowdown: 2 * time.Millisecond, MaxSlowdown: 50 * time.Millisecond}
	m := disk.HitachiUltrastar15K450()
	var last optimize.Choice
	res, err := measure(resName, iters, func() (uint64, error) {
		c, err := core.AutoTune(profile, m, goal)
		if err != nil {
			return 0, err
		}
		last = c
		return 0, nil
	})
	if err != nil {
		return res, err
	}
	if last.ReqSectors <= 0 {
		return res, fmt.Errorf("tuner chose a degenerate size: %+v", last)
	}
	return res, nil
}

// benchFleet tunes a 4-member fleet once per worker count and advances it
// with RunAllFor at 1, 4 and 8 workers. Per-member reports must be
// byte-identical across worker counts — the pooling/batching layers must
// not leak any cross-worker nondeterminism — otherwise the suite fails.
func benchFleet(quick bool) ([]benchcmp.Result, error) {
	names := []string{"HPc3t3d0", "HPc6t5d0", "MSRsrc11", "MSRusr1"}
	profDur, slices := 30*time.Minute, 4
	if quick {
		profDur, slices = 15*time.Minute, 4
	}
	m := disk.HitachiUltrastar15K450()
	specs := make([]core.MemberSpec, len(names))
	for i, n := range names {
		spec, ok := trace.ByName(n)
		if !ok {
			return nil, fmt.Errorf("fleet: unknown catalog trace %s", n)
		}
		specs[i] = core.MemberSpec{Name: n, Model: m, Profile: spec.Generate(3, profDur).Records, Alg: core.Staggered}
	}
	goal := optimize.Goal{MeanSlowdown: 2 * time.Millisecond, MaxSlowdown: 50 * time.Millisecond}

	var results []benchcmp.Result
	var snapshot string
	for _, workers := range []int{1, 4, 8} {
		name := "fleet/workers-" + strconv.Itoa(workers)
		fl := core.NewFleet(goal)
		if _, err := fl.AddAll(context.Background(), workers, specs); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		fl.Start()
		totalFired := func() uint64 {
			var fired uint64
			for _, n := range names {
				fired += fl.System(n).Sim.Fired()
			}
			return fired
		}
		prev := totalFired()
		res, err := measure(name, slices, func() (uint64, error) {
			if err := fl.RunAllFor(context.Background(), workers, 2*time.Minute); err != nil {
				return 0, err
			}
			cur := totalFired()
			delta := cur - prev
			prev = cur
			return delta, nil
		})
		if err != nil {
			return nil, err
		}
		results = append(results, res)

		snap := fleetSnapshot(fl, names)
		if snapshot == "" {
			snapshot = snap
		} else if snap != snapshot {
			return nil, fmt.Errorf("%s: fleet reports diverged from workers-1 run:\n%s\nvs\n%s", name, snap, snapshot)
		}
	}
	return results, nil
}

// fleetSnapshot renders every member's report deterministically for the
// byte-identical cross-worker comparison.
func fleetSnapshot(fl *core.Fleet, names []string) string {
	var sb strings.Builder
	reports, total := fl.Reports()
	for _, r := range reports {
		fmt.Fprintf(&sb, "%s %s %+v\n", r.Name, r.Choice, r.Report)
	}
	fmt.Fprintf(&sb, "total %v members %d\n", total, len(names))
	return sb.String()
}

// peakRSS returns the process's high-water resident set in bytes, from
// /proc/self/status VmHWM where available, else the Go heap's Sys bytes.
func peakRSS() int64 {
	if f, err := os.Open("/proc/self/status"); err == nil {
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb * 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}
