package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWithCatalogTrace(t *testing.T) {
	// Keep it short: a 20-minute HPc3t3d0 profile tunes in well under a
	// second thanks to the closed-form interval simulator.
	err := run([]string{"-trace", "HPc3t3d0", "-dur", "20m", "-mean-slowdown", "2ms"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownTrace(t *testing.T) {
	if err := run([]string{"-trace", "nope"}); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"-file", "/nonexistent/trace.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunWithCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	var b strings.Builder
	b.WriteString("arrival_us,op,lba,sectors\n")
	// A sparse workload with generous gaps: easily tunable.
	for i := 0; i < 3000; i++ {
		b.WriteString(itoa(int64(i)*200_000) + ",R," + itoa(int64(i)*1000) + ",16\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-mean-slowdown", "5ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMSRFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.msr")
	var b strings.Builder
	for i := 0; i < 3000; i++ {
		ticks := int64(128166372003061629) + int64(i)*2_000_000 // 200ms apart
		b.WriteString(itoa(ticks) + ",host,0,Read," + itoa(int64(i)*512000) + ",8192,100\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-msr", "-mean-slowdown", "5ms"}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
