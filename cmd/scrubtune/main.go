// Command scrubtune implements the paper's Section V-D recipe as a tool:
// feed it a workload trace (catalog name or CSV) and a slowdown goal, get
// back the throughput-maximizing scrub request size and Waiting threshold
// (a Table III row).
//
// Usage:
//
//	scrubtune -trace HPc6t8d0 -mean-slowdown 1ms -max-slowdown 50.4ms
//	scrubtune -file mytrace.csv -mean-slowdown 2ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/optimize"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scrubtune:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("scrubtune", flag.ContinueOnError)
	traceName := fs.String("trace", "MSRsrc11", "catalog trace name")
	file := fs.String("file", "", "CSV trace file (overrides -trace)")
	msr := fs.Bool("msr", false, "treat -file as SNIA MSR-Cambridge format")
	msrDisk := fs.Int("msr-disk", -1, "MSR DiskNumber filter (-1 = all)")
	meanSlow := fs.Duration("mean-slowdown", time.Millisecond, "average tolerable slowdown per request")
	maxSlow := fs.Duration("max-slowdown", 50400*time.Microsecond, "maximum tolerable slowdown per request")
	dur := fs.Duration("dur", 6*time.Hour, "trace duration to profile")
	seed := fs.Int64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "worker goroutines for the size sweep (0 = GOMAXPROCS, 1 = serial); the tuned choice is identical for every value")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var records []trace.Record
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		var tr *trace.Trace
		if *msr {
			tr, err = trace.ReadMSR(f, trace.MSROptions{Name: *file, DiskNumber: *msrDisk})
		} else {
			tr, err = trace.Read(f)
		}
		if err != nil {
			return err
		}
		records = tr.Records
	} else {
		spec, ok := trace.ByName(*traceName)
		if !ok {
			return fmt.Errorf("unknown trace %q", *traceName)
		}
		records = spec.Generate(*seed, *dur).Records
	}

	// Quick sanity on the workload shape before tuning.
	arrivals := make([]time.Duration, len(records))
	for i, r := range records {
		arrivals[i] = r.Arrival
	}
	profile := stats.ProfileArrivals(arrivals)
	if !profile.WaitingFriendly() {
		fmt.Println("note: workload is not waiting-friendly (memoryless or thin idle tail);")
		fmt.Println("      the tuned throughput will be modest. Profile:")
		fmt.Println(profile)
		fmt.Println()
	}

	m := disk.HitachiUltrastar15K450()
	choice, err := core.AutoTuneParallel(context.Background(), records, m, optimize.Goal{
		MeanSlowdown: *meanSlow,
		MaxSlowdown:  *maxSlow,
	}, *parallel)
	if err != nil {
		return err
	}
	fmt.Printf("profiled:        %d requests\n", len(records))
	fmt.Printf("goal:            mean %v, max %v\n", *meanSlow, *maxSlow)
	fmt.Printf("request size:    %d KB\n", choice.ReqSectors/2)
	fmt.Printf("wait threshold:  %v\n", choice.Threshold.Round(100*time.Microsecond))
	fmt.Printf("scrub rate:      %.2f MB/s\n", choice.Result.ThroughputMBps())
	fmt.Printf("mean slowdown:   %.3f ms\n", choice.Result.MeanSlowdown().Seconds()*1e3)
	fmt.Printf("collision rate:  %.4f\n", choice.Result.CollisionRate())
	full := 300e9 / (choice.Result.ThroughputMBps() * 1e6)
	fmt.Printf("full 300GB scan: %.1f hours at this rate\n", full/3600)
	return nil
}
