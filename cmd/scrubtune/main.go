// Command scrubtune implements the paper's Section V-D recipe as a tool:
// feed it a workload trace (catalog name or CSV) and a slowdown goal, get
// back the throughput-maximizing scrub request size and Waiting threshold
// (a Table III row).
//
// Usage:
//
//	scrubtune -trace HPc6t8d0 -mean-slowdown 1ms -max-slowdown 50.4ms
//	scrubtune -file mytrace.csv -mean-slowdown 2ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/optimize"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scrubtune:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("scrubtune", flag.ContinueOnError)
	traceName := fs.String("trace", "MSRsrc11", "catalog trace name")
	file := fs.String("file", "", "trace file (overrides -trace); format sniffed unless -format is set")
	format := fs.String("format", "auto", "trace file format: auto | native | msr | cello | blktrace | cache")
	msr := fs.Bool("msr", false, "treat -file as SNIA MSR-Cambridge format (alias for -format msr)")
	msrDisk := fs.Int("msr-disk", -1, "MSR DiskNumber filter (-1 = all)")
	meanSlow := fs.Duration("mean-slowdown", time.Millisecond, "average tolerable slowdown per request")
	maxSlow := fs.Duration("max-slowdown", 50400*time.Microsecond, "maximum tolerable slowdown per request")
	dur := fs.Duration("dur", 6*time.Hour, "trace duration to profile")
	seed := fs.Int64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "worker goroutines for the size sweep (0 = GOMAXPROCS, 1 = serial); the tuned choice is identical for every value")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The tuner only consumes the workload's arrival process, so a file
	// trace streams through in constant per-record memory: one pass
	// collects the arrival instants for the shape profile, a reset pass
	// feeds the idle gaps to the optimizer. Records are never
	// materialized.
	var src trace.Source
	if *file != "" {
		s, err := openTraceFile(*file, *format, *msr, *msrDisk)
		if err != nil {
			return err
		}
		defer trace.CloseSource(s)
		src = s
	} else {
		spec, ok := trace.ByName(*traceName)
		if !ok {
			return fmt.Errorf("unknown trace %q", *traceName)
		}
		src = spec.Source(*seed, *dur)
	}
	var arrivals []time.Duration
	if err := trace.EachArrival(src, func(at time.Duration) bool {
		arrivals = append(arrivals, at)
		return true
	}); err != nil {
		return err
	}
	if err := src.Reset(); err != nil {
		return err
	}

	// Quick sanity on the workload shape before tuning.
	profile := stats.ProfileArrivals(arrivals)
	if !profile.WaitingFriendly() {
		fmt.Println("note: workload is not waiting-friendly (memoryless or thin idle tail);")
		fmt.Println("      the tuned throughput will be modest. Profile:")
		fmt.Println(profile)
		fmt.Println()
	}

	m := disk.HitachiUltrastar15K450()
	choice, err := core.AutoTuneSourceParallel(context.Background(), src, m, optimize.Goal{
		MeanSlowdown: *meanSlow,
		MaxSlowdown:  *maxSlow,
	}, *parallel)
	if err != nil {
		return err
	}
	fmt.Printf("profiled:        %d requests\n", len(arrivals))
	fmt.Printf("goal:            mean %v, max %v\n", *meanSlow, *maxSlow)
	fmt.Printf("request size:    %d KB\n", choice.ReqSectors/2)
	fmt.Printf("wait threshold:  %v\n", choice.Threshold.Round(100*time.Microsecond))
	fmt.Printf("scrub rate:      %.2f MB/s\n", choice.Result.ThroughputMBps())
	fmt.Printf("mean slowdown:   %.3f ms\n", choice.Result.MeanSlowdown().Seconds()*1e3)
	fmt.Printf("collision rate:  %.4f\n", choice.Result.CollisionRate())
	full := 300e9 / (choice.Result.ThroughputMBps() * 1e6)
	fmt.Printf("full 300GB scan: %.1f hours at this rate\n", full/3600)
	return nil
}

// openTraceFile opens a trace file as a Source, honoring the -format
// flag (with "auto" sniffing) and the legacy -msr/-msr-disk flags.
func openTraceFile(path, format string, msr bool, msrDisk int) (trace.Source, error) {
	f, err := trace.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	if msr {
		f = trace.FormatMSR
	}
	if f == trace.FormatUnknown {
		if f, err = trace.DetectFormat(path); err != nil {
			return nil, err
		}
	}
	if f == trace.FormatMSR {
		return trace.OpenMSR(path, trace.MSROptions{Name: path, DiskNumber: msrDisk})
	}
	return trace.Open(path, f)
}
