// Command mleteval evaluates the mean latent error time (MLET) of
// scrubbing schedules under the bursty LSE model: sequential scanning,
// plain staggered probing, and staggered with region-scrub-on-detection,
// across region counts. This extends the paper with the metric that
// motivates staggered scrubbing (Oprea & Juels, FAST'10).
//
// Usage:
//
//	mleteval -rate 50 -burst-rate 1 -burst-size 8 -spread 512
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/mlet"
	"repro/internal/par"
	"repro/internal/raid"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mleteval:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mleteval", flag.ContinueOnError)
	capacityGB := fs.Int64("capacity", 300, "disk capacity in GB")
	rateMB := fs.Float64("rate", 50, "effective scrub rate in MB/s")
	burstRate := fs.Float64("burst-rate", 1, "LSE bursts per hour")
	burstSize := fs.Float64("burst-size", 8, "mean errors per burst")
	spreadMB := fs.Int64("spread", 512, "burst spatial extent in MB")
	horizon := fs.Duration("horizon", 1000*time.Hour, "simulated horizon")
	seed := fs.Int64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "worker goroutines for the schedule sweep (0 = GOMAXPROCS, 1 = serial); results are identical for every value")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sectors := *capacityGB * 1000 * 1000 * 1000 / 512
	rate := *rateMB * 1e6
	model := mlet.BurstModel{
		Rate:          *burstRate,
		MeanSize:      *burstSize,
		SpreadSectors: *spreadMB << 11, // MB -> sectors
		TotalSectors:  sectors,
	}
	rng := rand.New(rand.NewSource(*seed))
	bursts := model.Generate(rng, *horizon)
	errs := 0
	for _, b := range bursts {
		errs += len(b.Sectors)
	}
	fmt.Printf("%d bursts / %d errors over %v on a %dGB disk scrubbed at %.0f MB/s\n\n",
		len(bursts), errs, *horizon, *capacityGB, *rateMB)

	seq, err := mlet.NewSequentialSchedule(sectors, rate)
	if err != nil {
		return err
	}
	// MTTDL of an 8-disk RAID group whose rebuild takes 12h, per schedule,
	// at a field-realistic LSE event rate (roughly one event per 2000
	// disk-hours; the -burst-rate flag is a stress rate for MLET
	// statistics, not a field rate).
	array := raid.Array{
		Disks:       8,
		DiskMTTF:    1_000_000 * time.Hour,
		RebuildTime: 12 * time.Hour,
		LSERate:     1.0 / 2000,
	}
	fmt.Printf("%-32s %12s %12s %14s\n", "schedule", "MLET", "max", "RAID-5 MTTDL")
	pr := func(r mlet.Result) {
		array.ScrubMLET = r.MLET
		rep, err := raid.Analyze(array)
		mttdl := "-"
		if err == nil {
			mttdl = fmt.Sprintf("%.0f yr", rep.MTTDLYears)
		}
		fmt.Printf("%-32s %12v %12v %14s\n", r.Schedule,
			r.MLET.Round(time.Second), r.MaxLatency.Round(time.Second), mttdl)
	}
	// Status-quo reference: a bi-weekly scan leaves errors latent for half
	// a fortnight on average.
	pr(mlet.Result{Schedule: "bi-weekly scan (status quo)", MLET: 7 * 24 * time.Hour, MaxLatency: 14 * 24 * time.Hour})
	pr(mlet.Evaluate(seq, bursts))
	// The per-region-count evaluations share bursts read-only; compute
	// them in parallel and print serially in region order.
	regionCounts := []int{64, 128, 256, 512, 1024}
	type pair struct {
		plain, region mlet.Result
		err           error
	}
	outs := make([]pair, len(regionCounts))
	par.Do(par.Workers(*parallel), len(regionCounts), func(i int) {
		regions := regionCounts[i]
		stag, err := mlet.NewStaggeredSchedule(sectors, 2048, regions, rate)
		if err != nil {
			outs[i].err = err
			return
		}
		plain := mlet.Evaluate(stag, bursts)
		plain.Schedule = fmt.Sprintf("staggered(%d)", regions)
		region := mlet.EvaluateWithRegionScrub(stag, bursts)
		region.Schedule = fmt.Sprintf("staggered(%d)+region-scrub", regions)
		outs[i] = pair{plain: plain, region: region}
	})
	for _, p := range outs {
		if p.err != nil {
			return p.err
		}
		pr(p.plain)
		pr(p.region)
	}
	fmt.Println("\nreading: region-scrub-on-detection pays off most once regions are small")
	fmt.Println("enough that one LSE burst spans a large fraction of a region — the same")
	fmt.Println("small-region regime the paper recommends for throughput (Section IV-A).")
	return nil
}
