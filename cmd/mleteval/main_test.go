package main

import "testing"

func TestMletevalSmall(t *testing.T) {
	if err := run([]string{"-horizon", "50h", "-capacity", "36"}); err != nil {
		t.Fatal(err)
	}
}

func TestMletevalBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
