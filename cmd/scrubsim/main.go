// Command scrubsim runs a scrub campaign against a workload trace on a
// simulated drive and reports foreground impact and scrub progress.
//
// Usage:
//
//	scrubsim -trace MSRsrc11 -policy waiting -threshold 100ms -size 1MB -dur 30m
//	scrubsim -file mytrace.csv -policy cfq-idle
//	scrubsim -disk demo -faults bursty -fault-rate 60 -dur 30m -metrics json
//	scrubsim -disk demo-ssd -sched bsa -policy waiting -dur 10m
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/iosched"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scrubsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runTo(os.Stdout, args) }

func runTo(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("scrubsim", flag.ContinueOnError)
	traceName := fs.String("trace", "MSRsrc11", "catalog trace name (see cmd/tracegen -list)")
	file := fs.String("file", "", "trace file (overrides -trace); format sniffed unless -format is set")
	format := fs.String("format", "auto", "trace file format: auto | native | msr | cello | blktrace | cache")
	msr := fs.Bool("msr", false, "treat -file as SNIA MSR-Cambridge format (alias for -format msr)")
	msrDisk := fs.Int("msr-disk", -1, "MSR DiskNumber filter (-1 = all)")
	policyName := fs.String("policy", "waiting", "cfq-idle | fixed-delay | waiting | ar | ar+waiting")
	algName := fs.String("alg", "staggered", "sequential | staggered")
	regions := fs.Int("regions", 128, "staggered regions")
	size := fs.Int64("size", 64<<10, "scrub request size in bytes")
	threshold := fs.Duration("threshold", 100*time.Millisecond, "waiting/AR threshold")
	delay := fs.Duration("delay", 16*time.Millisecond, "fixed-delay pause")
	dur := fs.Duration("dur", 30*time.Minute, "trace duration to simulate")
	seed := fs.Int64("seed", 1, "random seed")
	diskName := fs.String("disk", "", "device model: demo, demo-ssd, ssd/nvme, or a (substring of a) catalog name; default Ultrastar 15K450")
	schedName := fs.String("sched", "", "I/O scheduler: cfq (default) | deadline | noop | bsa | bsa-repair")
	faults := fs.String("faults", "", "LSE arrival model: uniform | bursty | accel (empty = no fault injection)")
	faultRate := fs.Float64("fault-rate", 60, "fault events per hour")
	faultBurst := fs.Float64("fault-burst", 4, "mean sectors per fault event (bursty/accel)")
	faultCluster := fs.Int64("fault-cluster", 1024, "burst spatial spread in sectors")
	faultGrowth := fs.Float64("fault-growth", 0.05, "accel: fractional rate growth per hour")
	faultSeed := fs.Int64("fault-seed", 1, "fault stream RNG seed")
	metrics := fs.String("metrics", "", "dump a metrics snapshot after the run: json | csv | prom")
	traceEvents := fs.Int("trace-events", 0, "record the last N simulation events and dump them after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Per-model threshold defaults: when -threshold is not given, the
	// device model picks (100ms for disks, shorter for flash). An explicit
	// flag always wins.
	thresholdSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "threshold" {
			thresholdSet = true
		}
	})
	if *metrics != "" && !slices.Contains(obs.Formats, *metrics) {
		return fmt.Errorf("unknown metrics format %q (want one of %v)", *metrics, obs.Formats)
	}
	if *traceEvents < 0 {
		return fmt.Errorf("-trace-events must be >= 0")
	}

	var records []trace.Record
	var diskSectors int64
	if *file != "" {
		src, err := openTraceFile(*file, *format, *msr, *msrDisk)
		if err != nil {
			return err
		}
		defer trace.CloseSource(src)
		tr, err := trace.ReadAll(src)
		if err != nil {
			return err
		}
		records, diskSectors = tr.Records, tr.DiskSectors
	} else {
		spec, ok := trace.ByName(*traceName)
		if !ok {
			return fmt.Errorf("unknown trace %q", *traceName)
		}
		tr := spec.Generate(*seed, *dur)
		records, diskSectors = tr.Records, tr.DiskSectors
	}

	policy, err := parsePolicy(*policyName)
	if err != nil {
		return err
	}
	alg := core.Staggered
	if *algName == "sequential" {
		alg = core.Sequential
	} else if *algName != "staggered" {
		return fmt.Errorf("unknown algorithm %q", *algName)
	}

	var reg *obs.Registry
	if *metrics != "" || *traceEvents > 0 {
		var opts []obs.Option
		if *traceEvents > 0 {
			opts = append(opts, obs.WithTrace(*traceEvents))
		}
		reg = obs.New(opts...)
	}

	model, err := disk.FindModel(*diskName)
	if err != nil {
		return err
	}
	opts := []core.Option{
		core.WithDevice(model),
		core.WithIOSched(*schedName),
		core.WithAlgorithm(alg),
		core.WithRegions(*regions),
		core.WithPolicy(policy),
		core.WithRequestBytes(*size),
		core.WithDelay(*delay),
		core.WithObs(reg),
	}
	if thresholdSet {
		opts = append(opts, core.WithWaitThreshold(*threshold), core.WithARThreshold(*threshold))
	} else {
		opts = append(opts, core.WithARThreshold(model.DefaultWaitThreshold()))
	}
	if *faults != "" {
		fm, err := fault.ParseModel(*faults, *faultRate, *faultBurst, *faultCluster, *faultGrowth)
		if err != nil {
			return err
		}
		// Fault campaigns exercise the full LSE lifecycle: detection,
		// remap-on-detect (auto-repair), region re-scrub escalation, and a
		// drive-style bounded retry loop at the block layer.
		opts = append(opts,
			core.WithFaults(fm),
			core.WithFaultSeed(*faultSeed),
			core.WithAutoRepair(),
			core.WithEscalation(),
			core.WithRetryPolicy(blockdev.RetryPolicy{
				MaxRetries: 2,
				Backoff:    time.Millisecond,
				Timeout:    100 * time.Millisecond,
			}),
		)
	}
	sys, err := core.New(nil, opts...)
	if err != nil {
		return err
	}

	// Baseline replay (no scrubber) for slowdown accounting, through the
	// same device model and scheduler.
	base, err := replayOnce(model, *schedName, records, diskSectors)
	if err != nil {
		return err
	}
	sys.Start()
	res, err := (&replay.Replayer{}).Run(sys.Sim, sys.Queue, records, diskSectors)
	if err != nil {
		return err
	}

	rep := sys.Report()
	fmt.Fprintf(w, "trace:             %d requests over %v\n", res.Requests, res.Span.Round(time.Second))
	fmt.Fprintf(w, "policy:            %s (%s)\n", rep.Policy, rep.Algorithm)
	fmt.Fprintf(w, "scrub throughput:  %.2f MB/s (pass %.1f%%, %d full passes)\n", rep.ScrubMBps, 100*rep.PassProgress, rep.Passes)
	fmt.Fprintf(w, "fg mean response:  %.3f ms\n", res.MeanResponse()*1e3)
	fmt.Fprintf(w, "fg mean slowdown:  %.3f ms\n", res.MeanSlowdownVs(base).Seconds()*1e3)
	fmt.Fprintf(w, "fg max slowdown:   %.3f ms\n", res.MaxSlowdownVs(base).Seconds()*1e3)
	fmt.Fprintf(w, "collision rate:    %.4f\n", res.CollisionRate())
	if sys.Faults != nil {
		fs := sys.Faults.Stats()
		fmt.Fprintf(w, "faults injected:   %d (model %s)\n", fs.Injected, *faults)
		fmt.Fprintf(w, "faults detected:   %d (%.1f%%)\n", fs.Detected, 100*fs.DetectionRatio())
		fmt.Fprintf(w, "faults remapped:   %d (%d cleared by overwrites, %d outstanding)\n",
			fs.Remapped, fs.ClearedUndetected, fs.Outstanding())
		fmt.Fprintf(w, "mean detect time:  %v (escalations: %d)\n",
			fs.MeanTimeToDetection().Round(time.Millisecond), rep.Escalations)
	}
	return dumpObs(w, reg, *metrics, *traceEvents)
}

// openTraceFile opens a trace file as a Source, honoring the -format
// flag (with "auto" sniffing) and the legacy -msr/-msr-disk flags.
func openTraceFile(path, format string, msr bool, msrDisk int) (trace.Source, error) {
	f, err := trace.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	if msr {
		f = trace.FormatMSR
	}
	if f == trace.FormatUnknown {
		if f, err = trace.DetectFormat(path); err != nil {
			return nil, err
		}
	}
	if f == trace.FormatMSR {
		return trace.OpenMSR(path, trace.MSROptions{Name: path, DiskNumber: msrDisk})
	}
	return trace.Open(path, f)
}

// parseSched maps a -sched name to a fresh scheduler instance for the
// baseline stack; core validates the same names for the scrubbed system.
func parseSched(name string) (blockdev.Scheduler, error) {
	switch name {
	case "", "cfq":
		return iosched.NewCFQ(), nil
	case "deadline":
		return iosched.NewDeadline(), nil
	case "noop":
		return iosched.NewNOOP(), nil
	case "bsa":
		return iosched.NewBSA(), nil
	case "bsa-repair":
		return iosched.NewBSARepair(), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

// dumpObs writes the metrics snapshot and/or event-trace tail after the
// human-readable report. The "--- metrics (<fmt>) ---" marker lets
// consumers split the machine-readable part from the report.
func dumpObs(w io.Writer, reg *obs.Registry, format string, traceEvents int) error {
	if reg == nil {
		return nil
	}
	if format != "" {
		fmt.Fprintf(w, "--- metrics (%s) ---\n", format)
		if err := reg.Snapshot().WriteTo(w, format); err != nil {
			return err
		}
	}
	if traceEvents > 0 {
		events := reg.Trace().Events()
		fmt.Fprintf(w, "--- events (last %d of %d) ---\n", len(events), reg.Trace().Total())
		for _, ev := range events {
			fmt.Fprintln(w, ev.String())
		}
	}
	return nil
}

func parsePolicy(name string) (core.PolicyKind, error) {
	switch name {
	case "cfq-idle":
		return core.PolicyCFQIdle, nil
	case "fixed-delay":
		return core.PolicyFixedDelay, nil
	case "waiting":
		return core.PolicyWaiting, nil
	case "ar":
		return core.PolicyAR, nil
	case "ar+waiting":
		return core.PolicyARWaiting, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}

// replayOnce runs records through a fresh scrubber-free stack on the
// same device model and scheduler as the scrubbed run.
func replayOnce(dm disk.DeviceModel, sched string, records []trace.Record, diskSectors int64) (*replay.Result, error) {
	s := sim.New()
	d, err := dm.NewDevice()
	if err != nil {
		return nil, err
	}
	sc, err := parseSched(sched)
	if err != nil {
		return nil, err
	}
	q := blockdev.NewQueue(s, d, sc)
	return (&replay.Replayer{}).Run(s, q, records, diskSectors)
}
