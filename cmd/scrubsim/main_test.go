package main

import (
	"testing"
	"time"
)

func TestScrubsimWaiting(t *testing.T) {
	if err := run([]string{"-trace", "HPc3t3d0", "-dur", "2m", "-policy", "waiting", "-threshold", "200ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubsimCFQIdle(t *testing.T) {
	if err := run([]string{"-trace", "HPc3t3d0", "-dur", "1m", "-policy", "cfq-idle", "-alg", "sequential"}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubsimFixedDelay(t *testing.T) {
	if err := run([]string{"-trace", "TPCdisk66", "-dur", "10s", "-policy", "fixed-delay", "-delay", "32ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubsimBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-policy", "bogus"},
		{"-alg", "bogus", "-dur", "1s"},
		{"-trace", "ghost"},
		{"-file", "/no/such/file"},
		{"-zzz"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestParsePolicyAll(t *testing.T) {
	for _, name := range []string{"cfq-idle", "fixed-delay", "waiting", "ar", "ar+waiting"} {
		if _, err := parsePolicy(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	_ = time.Second
}
