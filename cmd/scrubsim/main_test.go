package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

func TestScrubsimWaiting(t *testing.T) {
	if err := run([]string{"-trace", "HPc3t3d0", "-dur", "2m", "-policy", "waiting", "-threshold", "200ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubsimCFQIdle(t *testing.T) {
	if err := run([]string{"-trace", "HPc3t3d0", "-dur", "1m", "-policy", "cfq-idle", "-alg", "sequential"}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubsimFixedDelay(t *testing.T) {
	if err := run([]string{"-trace", "TPCdisk66", "-dur", "10s", "-policy", "fixed-delay", "-delay", "32ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubsimMetricsFormats(t *testing.T) {
	for _, format := range obs.Formats {
		var buf bytes.Buffer
		err := runTo(&buf, []string{"-trace", "TPCdisk66", "-dur", "10s", "-metrics", format})
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		marker := "--- metrics (" + format + ") ---\n"
		if !strings.Contains(buf.String(), marker) {
			t.Fatalf("%s: output missing %q", format, marker)
		}
	}
}

func TestScrubsimTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"-trace", "TPCdisk66", "-dur", "10s", "-trace-events", "16"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "--- events (last 16 of ") {
		t.Fatalf("output missing event tail header:\n%s", out)
	}
	if !strings.Contains(out, "blockdev") {
		t.Fatal("event tail carries no blockdev events")
	}
}

// TestScrubsimMetricsMatchSimulation is the acceptance check for the
// metrics pipeline: the foreground-slowdown histogram in the -metrics
// snapshot must equal, bucket for bucket, a histogram built from the
// replay engine's own per-request queueing delays for the same seed.
func TestScrubsimMetricsMatchSimulation(t *testing.T) {
	args := []string{"-trace", "HPc3t3d0", "-dur", "2m", "-policy", "waiting",
		"-threshold", "200ms", "-seed", "7"}

	var buf bytes.Buffer
	if err := runTo(&buf, append(args, "-metrics", "json")); err != nil {
		t.Fatal(err)
	}
	_, raw, found := strings.Cut(buf.String(), "--- metrics (json) ---\n")
	if !found {
		t.Fatal("no metrics marker in output")
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(raw), &snap); err != nil {
		t.Fatalf("snapshot unmarshal: %v", err)
	}
	var got *obs.HistSnap
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "core.fg.slowdown" {
			got = &snap.Histograms[i]
		}
	}
	if got == nil {
		t.Fatal("snapshot has no core.fg.slowdown histogram")
	}

	// Re-run the identical simulation through the library and aggregate
	// the engine's own per-request waits.
	spec, ok := trace.ByName("HPc3t3d0")
	if !ok {
		t.Fatal("trace HPc3t3d0 missing from catalog")
	}
	tr := spec.Generate(7, 2*time.Minute)
	sys, err := core.New(nil, core.WithPolicy(core.PolicyWaiting), core.WithWaitThreshold(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	res, err := (&replay.Replayer{}).Run(sys.Sim, sys.Queue, tr.Records, tr.DiskSectors)
	if err != nil {
		t.Fatal(err)
	}
	want := obs.NewHistogram(nil)
	for _, sec := range res.Waits {
		want.Observe(time.Duration(sec * float64(time.Second)))
	}

	if got.Count != want.Count() {
		t.Fatalf("slowdown count: snapshot %d, engine %d", got.Count, want.Count())
	}
	wantSnap := want.Snapshot("core.fg.slowdown")
	for i, b := range got.Buckets {
		if b != wantSnap.Buckets[i] {
			t.Errorf("bucket %d: snapshot %+v, engine %+v", i, b, wantSnap.Buckets[i])
		}
	}
	// Sums may differ by float64 round-tripping of each wait (<= 1ns per
	// observation each way).
	if diff := got.SumNanos - wantSnap.SumNanos; diff > got.Count || diff < -got.Count {
		t.Errorf("slowdown sum: snapshot %d ns, engine %d ns", got.SumNanos, wantSnap.SumNanos)
	}
}

// TestScrubsimFaultDemo is the acceptance check for the fault-injection
// campaign: on the demo disk, the Waiting policy must detect at least
// 95% of the LSEs a bursty arrival stream plants over 30 minutes, and
// the run must report the full lifecycle — injected/detected/remapped
// counts plus the time-to-detection histogram in the -metrics snapshot.
func TestScrubsimFaultDemo(t *testing.T) {
	var buf bytes.Buffer
	err := runTo(&buf, []string{
		"-disk", "demo", "-faults", "bursty", "-trace", "HPc3t3d0",
		"-dur", "30m", "-policy", "waiting", "-threshold", "100ms",
		"-metrics", "json",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{"faults injected:", "faults detected:", "faults remapped:", "mean detect time:"} {
		if !strings.Contains(out, line) {
			t.Fatalf("report missing %q:\n%s", line, out)
		}
	}

	_, raw, found := strings.Cut(out, "--- metrics (json) ---\n")
	if !found {
		t.Fatal("no metrics marker in output")
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(raw), &snap); err != nil {
		t.Fatalf("snapshot unmarshal: %v", err)
	}
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	injected, detected := counters["fault.injected"], counters["fault.detected"]
	if injected == 0 {
		t.Fatal("no faults injected")
	}
	if ratio := float64(detected) / float64(injected); ratio < 0.95 {
		t.Fatalf("detection ratio %.3f (%d/%d), want >= 0.95", ratio, detected, injected)
	}
	if counters["fault.remapped"] == 0 {
		t.Fatal("auto-repair remapped nothing")
	}
	var ttd *obs.HistSnap
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "fault.time_to_detection" {
			ttd = &snap.Histograms[i]
		}
	}
	if ttd == nil || ttd.Count == 0 {
		t.Fatalf("snapshot missing a populated fault.time_to_detection histogram")
	}
	if ttd.Count != detected {
		t.Fatalf("TTD histogram count %d != detected counter %d", ttd.Count, detected)
	}
}

func TestScrubsimFaultBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-faults", "bogus", "-dur", "1s"},
		{"-disk", "nosuchdrive", "-dur", "1s"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestParseDisk(t *testing.T) {
	if m, err := disk.FindModel(""); err != nil || m.DeviceName() != disk.HitachiUltrastar15K450().Name {
		t.Fatalf("default disk = %v, %v", m, err)
	}
	if m, err := disk.FindModel("demo"); err != nil || m.DeviceSectors() != disk.DemoSmall().DeviceSectors() {
		t.Fatalf("demo disk = %v, %v", m, err)
	}
	if m, err := disk.FindModel("ultrastar"); err != nil || !strings.Contains(strings.ToLower(m.DeviceName()), "ultrastar") {
		t.Fatalf("substring match = %v, %v", m, err)
	}
	if m, err := disk.FindModel("demo-ssd"); err != nil || m.DeviceName() != disk.DemoSSD().Name {
		t.Fatalf("demo-ssd = %v, %v", m, err)
	}
}

func TestParseSchedAll(t *testing.T) {
	for _, name := range []string{"", "cfq", "deadline", "noop", "bsa", "bsa-repair"} {
		if s, err := parseSched(name); err != nil || s == nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if _, err := parseSched("anticipatory"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

// TestScrubsimSSD drives the flash device model end to end from flags:
// the run must finish and report scrub progress like a disk run would.
func TestScrubsimSSD(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"-disk", "demo-ssd", "-sched", "bsa",
		"-trace", "TPCdisk66", "-dur", "30s", "-policy", "waiting", "-alg", "sequential"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "scrub throughput:") {
		t.Fatalf("SSD run produced no scrub report:\n%s", buf.String())
	}
}

func TestScrubsimBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-policy", "bogus"},
		{"-alg", "bogus", "-dur", "1s"},
		{"-trace", "ghost"},
		{"-file", "/no/such/file"},
		{"-metrics", "xml"},
		{"-trace-events", "-4"},
		{"-sched", "anticipatory", "-dur", "1s"},
		{"-zzz"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestParsePolicyAll(t *testing.T) {
	for _, name := range []string{"cfq-idle", "fixed-delay", "waiting", "ar", "ar+waiting"} {
		if _, err := parsePolicy(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	_ = time.Second
}
