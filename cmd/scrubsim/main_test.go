package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

func TestScrubsimWaiting(t *testing.T) {
	if err := run([]string{"-trace", "HPc3t3d0", "-dur", "2m", "-policy", "waiting", "-threshold", "200ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubsimCFQIdle(t *testing.T) {
	if err := run([]string{"-trace", "HPc3t3d0", "-dur", "1m", "-policy", "cfq-idle", "-alg", "sequential"}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubsimFixedDelay(t *testing.T) {
	if err := run([]string{"-trace", "TPCdisk66", "-dur", "10s", "-policy", "fixed-delay", "-delay", "32ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubsimMetricsFormats(t *testing.T) {
	for _, format := range obs.Formats {
		var buf bytes.Buffer
		err := runTo(&buf, []string{"-trace", "TPCdisk66", "-dur", "10s", "-metrics", format})
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		marker := "--- metrics (" + format + ") ---\n"
		if !strings.Contains(buf.String(), marker) {
			t.Fatalf("%s: output missing %q", format, marker)
		}
	}
}

func TestScrubsimTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"-trace", "TPCdisk66", "-dur", "10s", "-trace-events", "16"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "--- events (last 16 of ") {
		t.Fatalf("output missing event tail header:\n%s", out)
	}
	if !strings.Contains(out, "blockdev") {
		t.Fatal("event tail carries no blockdev events")
	}
}

// TestScrubsimMetricsMatchSimulation is the acceptance check for the
// metrics pipeline: the foreground-slowdown histogram in the -metrics
// snapshot must equal, bucket for bucket, a histogram built from the
// replay engine's own per-request queueing delays for the same seed.
func TestScrubsimMetricsMatchSimulation(t *testing.T) {
	args := []string{"-trace", "HPc3t3d0", "-dur", "2m", "-policy", "waiting",
		"-threshold", "200ms", "-seed", "7"}

	var buf bytes.Buffer
	if err := runTo(&buf, append(args, "-metrics", "json")); err != nil {
		t.Fatal(err)
	}
	_, raw, found := strings.Cut(buf.String(), "--- metrics (json) ---\n")
	if !found {
		t.Fatal("no metrics marker in output")
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(raw), &snap); err != nil {
		t.Fatalf("snapshot unmarshal: %v", err)
	}
	var got *obs.HistSnap
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "core.fg.slowdown" {
			got = &snap.Histograms[i]
		}
	}
	if got == nil {
		t.Fatal("snapshot has no core.fg.slowdown histogram")
	}

	// Re-run the identical simulation through the library and aggregate
	// the engine's own per-request waits.
	spec, ok := trace.ByName("HPc3t3d0")
	if !ok {
		t.Fatal("trace HPc3t3d0 missing from catalog")
	}
	tr := spec.Generate(7, 2*time.Minute)
	sys, err := core.New(core.Config{Policy: core.PolicyWaiting, WaitThreshold: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	res, err := (&replay.Replayer{}).Run(sys.Sim, sys.Queue, tr.Records, tr.DiskSectors)
	if err != nil {
		t.Fatal(err)
	}
	want := obs.NewHistogram(nil)
	for _, sec := range res.Waits {
		want.Observe(time.Duration(sec * float64(time.Second)))
	}

	if got.Count != want.Count() {
		t.Fatalf("slowdown count: snapshot %d, engine %d", got.Count, want.Count())
	}
	wantSnap := want.Snapshot("core.fg.slowdown")
	for i, b := range got.Buckets {
		if b != wantSnap.Buckets[i] {
			t.Errorf("bucket %d: snapshot %+v, engine %+v", i, b, wantSnap.Buckets[i])
		}
	}
	// Sums may differ by float64 round-tripping of each wait (<= 1ns per
	// observation each way).
	if diff := got.SumNanos - wantSnap.SumNanos; diff > got.Count || diff < -got.Count {
		t.Errorf("slowdown sum: snapshot %d ns, engine %d ns", got.SumNanos, wantSnap.SumNanos)
	}
}

func TestScrubsimBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-policy", "bogus"},
		{"-alg", "bogus", "-dur", "1s"},
		{"-trace", "ghost"},
		{"-file", "/no/such/file"},
		{"-metrics", "xml"},
		{"-trace-events", "-4"},
		{"-zzz"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestParsePolicyAll(t *testing.T) {
	for _, name := range []string{"cfq-idle", "fixed-delay", "waiting", "ar", "ar+waiting"} {
		if _, err := parsePolicy(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	_ = time.Second
}
