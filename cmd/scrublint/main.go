// Command scrublint is the project's multichecker: it runs the nine
// determinism/pool-safety/hot-path/snapshot-integrity analyzers from
// internal/analysis over the packages matching its arguments and exits
// nonzero on any finding.
//
// Usage:
//
//	go run ./cmd/scrublint [flags] [packages...]
//
// With no package arguments it checks ./.... Flags:
//
//	-analyzers names   comma-separated subset to run ("all" = full suite)
//	-list              list the analyzers and exit
//	-json              emit machine-readable diagnostics
//	-baseline file     suppress findings listed in the baseline file
//	-write-baseline    write the current findings to the -baseline file
//	-diff              print unified diffs of the suggested fixes
//	-fix               apply suggested fixes in place (gofmt'd)
//
// Exit status: 0 clean (or all findings fixed/suppressed), 1 findings,
// 2 operational error (load or type-check failure).
//
// Suppress a single finding with a trailing or preceding comment:
//
//	t := time.Now() //scrublint:allow simtime host-side calibration
//
// Fields intentionally outside a snapshot take a field-level directive
// with a mandatory reason:
//
//	instr Instr //scrublint:transient host-side instrumentation
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

// jsonDiagnostic is the -json output record.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// SuggestedFixes carries the fix messages (not the edits — those are
	// byte offsets private to this checkout); presence tells tooling
	// `-fix` can resolve the finding.
	SuggestedFixes []string `json:"suggested_fixes,omitempty"`
	// Suppressed marks findings matched by the -baseline file. They are
	// reported for visibility but do not affect the exit status.
	Suppressed bool `json:"suppressed,omitempty"`
}

func main() {
	os.Exit(scrublint(os.Args[1:], os.Stdout, os.Stderr))
}

// scrublint is main with injectable streams and status, for testing.
func scrublint(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scrublint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	list := fs.Bool("list", false, "list the analyzers and exit")
	names := fs.String("analyzers", "all", "comma-separated analyzers to run (\"all\" = full suite)")
	baselinePath := fs.String("baseline", "", "baseline file of tolerated findings")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to the -baseline file and exit")
	diff := fs.Bool("diff", false, "print unified diffs of suggested fixes")
	fix := fs.Bool("fix", false, "apply suggested fixes in place")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: scrublint [flags] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "scrublint:", err)
		return 2
	}
	diags, err := run(fs.Args(), analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "scrublint:", err)
		return 2
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(stderr, "scrublint: -write-baseline needs -baseline <file>")
			return 2
		}
		if err := os.WriteFile(*baselinePath, analysis.FormatBaseline(diags), 0o644); err != nil {
			fmt.Fprintln(stderr, "scrublint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "scrublint: wrote %d suppression(s) to %s\n", len(diags), *baselinePath)
		return 0
	}

	var suppressed []analysis.Diagnostic
	if *baselinePath != "" {
		bl, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "scrublint:", err)
			return 2
		}
		diags, suppressed = bl.Split(diags)
	}

	if *fix || *diff {
		results, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(stderr, "scrublint:", err)
			return 2
		}
		fixed := make(map[string]bool)
		for _, r := range results {
			if *diff {
				fmt.Fprint(stdout, r.Diff())
			}
			if *fix {
				if err := os.WriteFile(r.Filename, r.Fixed, 0o644); err != nil {
					fmt.Fprintln(stderr, "scrublint:", err)
					return 2
				}
				fixed[r.Filename] = true
			}
		}
		if *fix {
			// Findings whose file was rewritten are resolved; the rest
			// (no suggested fix) still count.
			var remaining []analysis.Diagnostic
			for _, d := range diags {
				if len(d.SuggestedFixes) == 0 || !fixed[d.Pos.Filename] {
					remaining = append(remaining, d)
				}
			}
			fmt.Fprintf(stderr, "scrublint: fixed %d file(s), %d finding(s) remain\n", len(fixed), len(remaining))
			diags = remaining
		}
	}

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags)+len(suppressed))
		emit := func(ds []analysis.Diagnostic, sup bool) {
			for _, d := range ds {
				jd := jsonDiagnostic{
					File:       d.Pos.Filename,
					Line:       d.Pos.Line,
					Col:        d.Pos.Column,
					Analyzer:   d.Analyzer,
					Message:    d.Message,
					Suppressed: sup,
				}
				for _, f := range d.SuggestedFixes {
					jd.SuggestedFixes = append(jd.SuggestedFixes, f.Message)
				}
				out = append(out, jd)
			}
		}
		emit(diags, false)
		emit(suppressed, true)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "scrublint:", err)
			return 2
		}
	} else if !*diff && !*fix {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "scrublint: %d finding(s)", len(diags))
			if len(suppressed) > 0 {
				fmt.Fprintf(stderr, " (+%d baseline-suppressed)", len(suppressed))
			}
			fmt.Fprintln(stderr)
		}
		return 1
	}
	return 0
}

// run loads the packages and applies the selected analyzers.
func run(patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.RunAnalyzers(pkgs, analyzers)
}
