// Command scrublint is the project's multichecker: it runs the five
// determinism/pool-safety/hot-path analyzers from internal/analysis over
// the packages matching its arguments and exits nonzero on any finding.
//
// Usage:
//
//	go run ./cmd/scrublint [-json] [packages...]
//
// With no package arguments it checks ./.... The -json flag emits
// machine-readable diagnostics (file, line, col, analyzer, message) for
// downstream gates. Exit status: 0 clean, 1 findings, 2 operational
// error (load or type-check failure).
//
// Suppress a single finding with a trailing or preceding comment:
//
//	t := time.Now() //scrublint:allow simtime host-side calibration
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

// jsonDiagnostic is the -json output record.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: scrublint [-json] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	diags, err := run(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrublint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "scrublint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "scrublint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// run loads the packages and applies the full suite.
func run(patterns []string) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.RunAnalyzers(pkgs, analysis.All())
}
