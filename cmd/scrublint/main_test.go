package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestRunCleanPackage drives the full load-and-analyze path over a small
// real package that must be clean.
func TestRunCleanPackage(t *testing.T) {
	diags, err := run([]string{"repro/internal/stats"}, analysis.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestJSONDiagnosticShape pins the -json record field names future
// tooling (benchcmp-style gates) will key on.
func TestJSONDiagnosticShape(t *testing.T) {
	b, err := json.Marshal(jsonDiagnostic{
		File: "x.go", Line: 3, Col: 9, Analyzer: "poolsafe", Message: "escape",
		SuggestedFixes: []string{"sort the keys"}, Suppressed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"x.go","line":3,"col":9,"analyzer":"poolsafe","message":"escape",` +
		`"suggested_fixes":["sort the keys"],"suppressed":true}`
	if string(b) != want {
		t.Fatalf("json = %s, want %s", b, want)
	}
	// Empty fix list and unsuppressed findings keep the legacy shape.
	b, err = json.Marshal(jsonDiagnostic{File: "x.go", Line: 3, Col: 9, Analyzer: "poolsafe", Message: "escape"})
	if err != nil {
		t.Fatal(err)
	}
	want = `{"file":"x.go","line":3,"col":9,"analyzer":"poolsafe","message":"escape"}`
	if string(b) != want {
		t.Fatalf("json = %s, want %s", b, want)
	}
}

// TestListFlag checks -list names all nine analyzers.
func TestListFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := scrublint([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d, stderr %s", code, errOut.String())
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
	if n := len(strings.Split(strings.TrimSpace(out.String()), "\n")); n != len(analysis.All()) {
		t.Errorf("-list printed %d lines, want %d", n, len(analysis.All()))
	}
}

// TestUnknownAnalyzer checks the operational-error exit status.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := scrublint([]string{"-analyzers", "nope", "repro/internal/stats"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2 (stderr %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", errOut.String())
	}
}

// TestAnalyzerSubset runs a single analyzer by name over a clean package.
func TestAnalyzerSubset(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := scrublint([]string{"-analyzers", "simtime", "repro/internal/stats"}, &out, &errOut); code != 0 {
		t.Fatalf("subset exit = %d, stderr %s", code, errOut.String())
	}
}

// TestBaselineRoundTrip writes a baseline from a finding-bearing package
// and checks the same run is then clean under it, with the suppression
// visible in -json output.
func TestBaselineRoundTrip(t *testing.T) {
	// The errsink fixture package lives in analysis testdata but is not
	// loadable by import path here; fabricate diagnostics instead and
	// check the baseline file format end to end.
	diags := []analysis.Diagnostic{{
		Analyzer: "errsink",
		Message:  "discarded error",
	}}
	diags[0].Pos.Filename = filepath.Join(t.TempDir(), "x.go")
	diags[0].Pos.Line = 3

	path := filepath.Join(t.TempDir(), "scrublint.baseline")
	if err := os.WriteFile(path, analysis.FormatBaseline(diags), 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err := analysis.ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Len() != 1 || !bl.Match(diags[0]) {
		t.Fatalf("baseline round-trip lost the entry (len %d)", bl.Len())
	}
}

// TestWriteBaselineNeedsPath pins the flag-combination error.
func TestWriteBaselineNeedsPath(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := scrublint([]string{"-write-baseline", "repro/internal/stats"}, &out, &errOut); code != 2 {
		t.Fatalf("-write-baseline without -baseline exit = %d, want 2", code)
	}
}
