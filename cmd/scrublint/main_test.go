package main

import (
	"encoding/json"
	"testing"
)

// TestRunCleanPackage drives the full load-and-analyze path over a small
// real package that must be clean.
func TestRunCleanPackage(t *testing.T) {
	diags, err := run([]string{"repro/internal/stats"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestJSONDiagnosticShape pins the -json record field names future
// tooling (benchcmp-style gates) will key on.
func TestJSONDiagnosticShape(t *testing.T) {
	b, err := json.Marshal(jsonDiagnostic{
		File: "x.go", Line: 3, Col: 9, Analyzer: "poolsafe", Message: "escape",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"x.go","line":3,"col":9,"analyzer":"poolsafe","message":"escape"}`
	if string(b) != want {
		t.Fatalf("json = %s, want %s", b, want)
	}
}
