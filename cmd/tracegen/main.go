// Command tracegen generates calibrated synthetic block I/O traces (the
// Table I catalog) as CSV on stdout.
//
// Usage:
//
//	tracegen -list
//	tracegen -trace MSRsrc11 -dur 1h -seed 3 > src11.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	list := fs.Bool("list", false, "list catalog traces and exit")
	name := fs.String("trace", "MSRsrc11", "catalog trace name")
	dur := fs.Duration("dur", time.Hour, "duration to generate")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		fmt.Fprintf(w, "%-12s %-22s %12s %10s %8s %7s\n", "name", "description", "requests", "mean idle", "CoV", "period")
		cat := append(trace.Catalog(), trace.MSRusr2())
		for _, s := range cat {
			fmt.Fprintf(w, "%-12s %-22s %12d %10s %8.2f %6dh\n",
				s.Name, s.Description, s.NominalRequests, s.MeanIdle, s.IdleCoV, s.PeriodHours)
		}
		return nil
	}
	spec, ok := trace.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown trace %q (try -list)", *name)
	}
	tr := spec.Generate(*seed, *dur)
	return trace.Write(os.Stdout, tr)
}
