package main

import "testing"

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownTrace(t *testing.T) {
	if err := run([]string{"-trace", "ghost"}); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestGenerateSmall(t *testing.T) {
	// Writes CSV to stdout; correctness of content is covered by the
	// trace package, this exercises the wiring.
	if err := run([]string{"-trace", "TPCdisk66", "-dur", "2s"}); err != nil {
		t.Fatal(err)
	}
}
