// Command scrubd serves the paper's scrub-scheduling policies as a
// long-running daemon. It ingests batched per-device I/O feed records
// over HTTP (POST /v1/feed), folds them into online idle statistics
// and incrementally refitted AR models, and answers scrub-decision
// queries (GET /v1/decide?dev=sda&now_us=...) with scrub-now / wait
// verdicts and suggested request sizes. Metrics export on /metrics in
// the Prometheus text format (or ?format=json|csv).
//
// All timing in decisions comes from feed timestamps, never the wall
// clock, so a recorded feed replays to byte-identical decisions; the
// wall clock only drives operational concerns (shutdown, periodic
// checkpoints) out here in the binary.
//
// Usage:
//
//	scrubd [-listen 127.0.0.1:9477] [-checkpoint state.ckpt] [-resume]
//	       [-shards 8] [-queue-cap 65536] [-wait-threshold 500ms]
//	       [-ar-threshold 2s] [-max-order 8] [-refit-every 64]
//	       [-min-gaps 16] [-scrub-rate 67108864] [-checkpoint-every 0]
//
// With -checkpoint set, POST /v1/checkpoint writes the state file
// atomically, -checkpoint-every adds a periodic write, and a final
// checkpoint is taken on graceful shutdown; -resume restores from the
// file at startup when it exists.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/scrubd"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9477", "HTTP listen address")
	ckptPath := flag.String("checkpoint", "", "checkpoint file path (enables /v1/checkpoint and shutdown checkpointing)")
	ckptEvery := flag.Duration("checkpoint-every", 0, "write a checkpoint this often (0 disables periodic checkpoints)")
	resume := flag.Bool("resume", false, "restore state from -checkpoint at startup when the file exists")
	shards := flag.Int("shards", 0, "device shards (0 = default)")
	queueCap := flag.Int("queue-cap", 0, "per-shard feed queue capacity in records (0 = default)")
	waitThr := flag.Duration("wait-threshold", 0, "Waiting policy idle threshold (0 = default)")
	arThr := flag.Duration("ar-threshold", 0, "AR policy predicted-idle threshold (0 = default)")
	maxOrder := flag.Int("max-order", 0, "max AR order for AIC selection (0 = default)")
	refitEvery := flag.Int("refit-every", 0, "gaps between AR refits per device (0 = default)")
	minGaps := flag.Int("min-gaps", 0, "gaps before trusting the AR fit (0 = default)")
	scrubRate := flag.Int64("scrub-rate", 0, "scrub throughput in bytes/sec for request sizing (0 = default)")
	maxDevices := flag.Int64("max-devices", 0, "device table cap (0 = default)")
	maxBody := flag.Int64("max-body", 0, "feed request body cap in bytes (0 = default)")
	flag.Parse()

	cfg := scrubd.Config{
		Shards:        *shards,
		QueueCap:      *queueCap,
		WaitThreshold: *waitThr,
		ARThreshold:   *arThr,
		MaxOrder:      *maxOrder,
		Decay:         0,
		RefitEvery:    *refitEvery,
		MinGaps:       *minGaps,
		ScrubRate:     *scrubRate,
		MaxDevices:    *maxDevices,
	}

	var eng *scrubd.Engine
	if *resume && *ckptPath != "" {
		restored, err := scrubd.RestoreFile(*ckptPath)
		switch {
		case err == nil:
			eng = restored
			fmt.Fprintf(os.Stderr, "scrubd: resumed %d devices from %s\n", eng.Devices(), *ckptPath)
		case errors.Is(err, os.ErrNotExist):
			// First boot: nothing to resume yet.
		default:
			fmt.Fprintln(os.Stderr, "scrubd:", err)
			os.Exit(1)
		}
	}
	if eng == nil {
		eng = scrubd.NewEngine(cfg)
	}
	eng.Start()

	srv := scrubd.NewServer(eng, scrubd.ServerConfig{
		MaxBodyBytes:   *maxBody,
		CheckpointPath: *ckptPath,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrubd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "scrubd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *ckptPath != "" && *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if _, err := eng.CheckpointFile(*ckptPath); err != nil {
						fmt.Fprintln(os.Stderr, "scrubd: periodic checkpoint:", err)
					}
				}
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "scrubd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "scrubd: shutdown:", err)
	}
	eng.Close()
	if *ckptPath != "" {
		if _, err := eng.CheckpointFile(*ckptPath); err != nil {
			fmt.Fprintln(os.Stderr, "scrubd: final checkpoint:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "scrubd: checkpointed %d devices to %s\n", eng.Devices(), *ckptPath)
	}
}
