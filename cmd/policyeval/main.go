// Command policyeval compares scrub scheduling policies on one trace's
// idle-interval profile: the Fig. 14 frontier (idle time utilized vs
// collision rate) for Oracle, AR, Waiting, Lossless Waiting and the
// combined policies.
//
// Usage:
//
//	policyeval -trace HPc6t8d0 -dur 12h
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "policyeval:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("policyeval", flag.ContinueOnError)
	name := fs.String("trace", "MSRusr2", "catalog trace name")
	quick := fs.Bool("quick", false, "short trace for a fast pass")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := experiments.Options{Quick: *quick, Seed: *seed}
	start := time.Now()
	series := experiments.Fig14(o, *name)
	fmt.Print(experiments.RenderSeries(
		fmt.Sprintf("Policy frontier for %s (collision rate vs idle-time utilization)", *name), series))
	fmt.Printf("(%d policies evaluated in %v)\n", len(series), time.Since(start).Round(time.Millisecond))
	return nil
}
