// Command policyeval compares scrub scheduling policies on one trace's
// idle-interval profile: the Fig. 14 frontier (idle time utilized vs
// collision rate) for Oracle, AR, Waiting, Lossless Waiting and the
// combined policies.
//
// Scenario modes widen the comparison beyond the scrub policy axis:
// -sched runs the I/O-scheduler head-to-head (CFQ/deadline/noop vs the
// bad-sector-aware schedulers), -layout the scrub-vs-rebuild
// interference table for clustered and declustered parity, -matrix the
// full device-model × scheduler matrix, and -disk <ssd model> the flash
// policy frontier on the SSD device model.
//
// Usage:
//
//	policyeval -trace HPc6t8d0 -dur 12h
//	policyeval -trace HPc6t8d0 -metrics prom
//	policyeval -sched -layout -quick
//	policyeval -disk demo-ssd -matrix
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "policyeval:", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runTo(os.Stdout, args) }

func runTo(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("policyeval", flag.ContinueOnError)
	name := fs.String("trace", "MSRusr2", "catalog trace name")
	quick := fs.Bool("quick", false, "short trace for a fast pass")
	seed := fs.Int64("seed", 1, "random seed")
	metrics := fs.String("metrics", "", "also run one instrumented Waiting-policy replay and dump its metrics: json | csv | prom")
	traceEvents := fs.Int("trace-events", 0, "record the last N events of the instrumented replay and dump them")
	faults := fs.String("faults", "", "inject LSEs during the instrumented replay: uniform | bursty | accel")
	faultRate := fs.Float64("fault-rate", 60, "fault events per hour")
	faultSeed := fs.Int64("fault-seed", 1, "fault stream RNG seed")
	schedCmp := fs.Bool("sched", false, "run the I/O-scheduler head-to-head on a drive with latent bad sectors")
	layoutCmp := fs.Bool("layout", false, "run the scrub-vs-rebuild interference table for clustered and declustered parity")
	matrix := fs.Bool("matrix", false, "run the device-model x scheduler scenario matrix")
	diskName := fs.String("disk", "", "run the flash policy frontier on this SSD model (demo-ssd, ssd/nvme)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metrics != "" && !slices.Contains(obs.Formats, *metrics) {
		return fmt.Errorf("unknown metrics format %q (want one of %v)", *metrics, obs.Formats)
	}
	if *traceEvents < 0 {
		return fmt.Errorf("-trace-events must be >= 0")
	}
	o := experiments.Options{Quick: *quick, Seed: *seed}
	if *schedCmp || *layoutCmp || *matrix || *diskName != "" {
		return scenarioModes(w, o, *schedCmp, *layoutCmp, *matrix, *diskName)
	}
	start := time.Now()
	series := experiments.Fig14(o, *name)
	fmt.Fprint(w, experiments.RenderSeries(
		fmt.Sprintf("Policy frontier for %s (collision rate vs idle-time utilization)", *name), series))
	fmt.Fprintf(w, "(%d policies evaluated in %v)\n", len(series), time.Since(start).Round(time.Millisecond))
	if *metrics == "" && *traceEvents == 0 && *faults == "" {
		return nil
	}
	var fm fault.Model
	if *faults != "" {
		var err error
		fm, err = fault.ParseModel(*faults, *faultRate, 4, 1024, 0.05)
		if err != nil {
			return err
		}
	}
	return instrumentedReplay(w, *name, *seed, *quick, *metrics, *traceEvents, fm, *faultSeed)
}

// scenarioModes renders the requested scenario comparisons in a fixed
// order: scheduler head-to-head, layout interference, device × scheduler
// matrix, flash policy frontier.
func scenarioModes(w io.Writer, o experiments.Options, sched, layout, matrix bool, diskName string) error {
	if sched {
		fmt.Fprint(w, experiments.TableSchedulers(o).Render())
	}
	if layout {
		fmt.Fprint(w, experiments.TableRebuildInterference(o).Render())
	}
	if matrix {
		fmt.Fprint(w, experiments.ScenarioMatrix(o).Render())
	}
	if diskName != "" {
		dm, err := disk.FindModel(diskName)
		if err != nil {
			return err
		}
		ssd, ok := dm.(disk.SSDModel)
		if !ok {
			return fmt.Errorf("-disk %s: the policy frontier's flash mode wants an SSD model (demo-ssd, nvme); Fig. 14 already covers rotating media", diskName)
		}
		fmt.Fprint(w, experiments.RenderSeries(
			fmt.Sprintf("Flash policy frontier on %s (scrub MB/s vs threshold ms)", ssd.Name),
			experiments.FigSSDPoliciesOn(o, ssd)))
	}
	return nil
}

// instrumentedReplay replays the named trace through the full queueing
// stack under the Waiting policy with every layer instrumented, then
// dumps the snapshot. The Fig. 14 frontier itself runs on the analytic
// idle-interval engine, which has no queue to instrument; this run is
// the queueing-level counterpart on the same workload.
func instrumentedReplay(w io.Writer, name string, seed int64, quick bool, format string, traceEvents int, fm fault.Model, faultSeed int64) error {
	spec, ok := trace.ByName(name)
	if !ok {
		return fmt.Errorf("unknown trace %q", name)
	}
	dur := 5 * time.Minute
	if quick {
		dur = time.Minute
	}
	tr := spec.Generate(seed, dur)

	var opts []obs.Option
	if traceEvents > 0 {
		opts = append(opts, obs.WithTrace(traceEvents))
	}
	reg := obs.New(opts...)
	copts := []core.Option{core.WithPolicy(core.PolicyWaiting), core.WithObs(reg)}
	if fm != nil {
		copts = append(copts, core.WithFaults(fm), core.WithFaultSeed(faultSeed),
			core.WithAutoRepair(), core.WithEscalation())
	}
	sys, err := core.New(nil, copts...)
	if err != nil {
		return err
	}
	sys.Start()
	if _, err := (&replay.Replayer{}).Run(sys.Sim, sys.Queue, tr.Records, tr.DiskSectors); err != nil {
		return err
	}
	if sys.Faults != nil {
		fs := sys.Faults.Stats()
		fmt.Fprintf(w, "faults: %d injected, %d detected (%.1f%%), %d remapped, mean TTD %v\n",
			fs.Injected, fs.Detected, 100*fs.DetectionRatio(), fs.Remapped,
			fs.MeanTimeToDetection().Round(time.Millisecond))
	}
	if format != "" {
		fmt.Fprintf(w, "--- metrics (%s) ---\n", format)
		if err := reg.Snapshot().WriteTo(w, format); err != nil {
			return err
		}
	}
	if traceEvents > 0 {
		events := reg.Trace().Events()
		fmt.Fprintf(w, "--- events (last %d of %d) ---\n", len(events), reg.Trace().Total())
		for _, ev := range events {
			fmt.Fprintln(w, ev.String())
		}
	}
	return nil
}
