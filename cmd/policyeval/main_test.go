package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestPolicyevalQuick(t *testing.T) {
	if err := run([]string{"-trace", "HPc3t3d0", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyevalMetrics(t *testing.T) {
	var buf bytes.Buffer
	err := runTo(&buf, []string{"-trace", "HPc3t3d0", "-quick", "-metrics", "csv", "-trace-events", "8"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "--- metrics (csv) ---\n") {
		t.Fatal("output missing metrics marker")
	}
	if !strings.Contains(out, "histogram,core.fg.slowdown,count,") {
		t.Fatal("metrics dump missing the foreground slowdown histogram")
	}
	if !strings.Contains(out, "--- events (last 8 of ") {
		t.Fatal("output missing event tail")
	}
}

func TestPolicyevalBadFlag(t *testing.T) {
	for _, args := range [][]string{
		{"-zzz"},
		{"-metrics", "yaml"},
		{"-trace-events", "-1"},
		{"-disk", "nosuchmodel"},
		{"-disk", "demo"}, // rotating media: the flash frontier refuses it
	} {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestPolicyevalScenarioModes drives every scenario comparison from
// flags in one pass and checks each table/figure shows up.
func TestPolicyevalScenarioModes(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"-quick", "-sched", "-layout", "-matrix", "-disk", "demo-ssd"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"I/O schedulers on a drive with latent bad sectors",
		"Scrub-vs-rebuild interference by layout",
		"Scenario matrix: device model x scheduler",
		"Flash policy frontier on Demo SSD 2GB",
		"bsa-repair",
		"declustered",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scenario output missing %q:\n%s", want, out)
		}
	}
}
