package main

import "testing"

func TestPolicyevalQuick(t *testing.T) {
	if err := run([]string{"-trace", "HPc3t3d0", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyevalBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
