package repro

// Benchmarks and guards for the observability layer's costs: the
// uninstrumented (nil-registry) path must stay allocation-free and
// branch-cheap, and the instrumented path must stay allocation-free in
// steady state (fixed histogram arrays, preallocated trace ring).

import (
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/obs"
)

// verifyReplayDisk builds a drive plus a fixed scrub-style VERIFY
// request sequence whose service loop performs no allocations: VERIFY
// on a SAS drive touches neither the cache nor the LSE list.
func verifyReplayDisk(reg *obs.Registry) (*disk.Disk, []disk.Request) {
	d := disk.MustNew(disk.HitachiUltrastar15K450())
	d.Instrument(reg)
	reqs := make([]disk.Request, 64)
	for i := range reqs {
		reqs[i] = disk.Request{
			Op:      disk.OpVerify,
			LBA:     int64(i) * 131072 % (d.Sectors() - 128),
			Sectors: 128,
		}
	}
	return d, reqs
}

func benchVerifyReplay(b *testing.B, reg *obs.Registry) {
	d, reqs := verifyReplayDisk(reg)
	b.ReportAllocs()
	b.ResetTimer()
	now := time.Duration(0)
	for i := 0; i < b.N; i++ {
		res, err := d.Service(reqs[i%len(reqs)], now)
		if err != nil {
			b.Fatal(err)
		}
		now = res.Done
	}
}

// BenchmarkReplayInstrumented compares a scrub replay through the disk
// service path with instrumentation disabled (nil registry — the
// default) and enabled. The nil-registry case must report 0 allocs/op;
// TestReplayNilRegistryAllocFree enforces that, the benchmark makes the
// per-op overhead visible.
func BenchmarkReplayInstrumented(b *testing.B) {
	b.Run("nil-registry", func(b *testing.B) {
		benchVerifyReplay(b, nil)
	})
	b.Run("live-registry", func(b *testing.B) {
		benchVerifyReplay(b, obs.New(obs.WithTrace(obs.DefaultRingCapacity)))
	})
}

// TestReplayNilRegistryAllocFree pins the acceptance criterion down as a
// plain test so it runs on every `go test ./...`, not only under -bench:
// the uninstrumented replay path performs zero allocations per request.
func TestReplayNilRegistryAllocFree(t *testing.T) {
	d, reqs := verifyReplayDisk(nil)
	now := time.Duration(0)
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		res, err := d.Service(reqs[i%len(reqs)], now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Done
		i++
	})
	if allocs != 0 {
		t.Fatalf("nil-registry replay allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestReplayLiveRegistrySteadyStateAllocFree: after instruments exist,
// the instrumented path is allocation-free too — observations land in
// fixed-size arrays and the trace ring overwrites in place.
func TestReplayLiveRegistrySteadyStateAllocFree(t *testing.T) {
	reg := obs.New(obs.WithTrace(obs.DefaultRingCapacity))
	d, reqs := verifyReplayDisk(reg)
	now := time.Duration(0)
	i := 0
	warm := func() {
		res, err := d.Service(reqs[i%len(reqs)], now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Done
		i++
	}
	warm() // create instruments, fill the first ring slots
	allocs := testing.AllocsPerRun(500, warm)
	if allocs != 0 {
		t.Fatalf("instrumented replay allocates %.1f allocs/op in steady state, want 0", allocs)
	}
}
